//! The batch-assign kernel layer: one entry point for the Assign phase,
//! with three interchangeable kernels behind it.
//!
//! * [`AssignKernel::Scalar`] — the exact reference: per-sample
//!   subtract-square scans (`sq_euclidean_unrolled`), bit-identical to
//!   [`crate::distance::argmin_centroid`] and to the seed executors.
//! * [`AssignKernel::Expanded`] — the norm expansion
//!   `‖x−c‖² = ‖x‖² + ‖c‖² − 2·x·c` with `‖c‖²` precomputed once per plan
//!   (i.e. once per Update), one dot product per centroid.
//! * [`AssignKernel::Tiled`] — the expansion evaluated tile-by-tile: a tile
//!   of T samples against a tile of B centroids at a time, with a 4×4
//!   register-blocked micro-dot-product inside each tile. Tile sizes come
//!   from the LDM budget ([`TileShape::for_budget`]), so host cache
//!   blocking mirrors the paper's 64 KB scratchpad tiling (constraint C1).
//! * [`AssignKernel::Gemm`] — the expansion computed as a cache-blocked
//!   GEMM: score blocks are `−2·X·Cᵀ` plus broadcast centroid norms,
//!   evaluated by a 4×8 register-tiled micro kernel over *packed* operands
//!   (column-interleaved sample blocks and centroid panels), reduced to an
//!   argmin per row block. Packing turns the inner loop into contiguous
//!   broadcast-×-panel multiplies, the vectorisable form the tiled
//!   kernel's strided row walks deny the compiler. Block shape comes from
//!   [`GemmBlocking::for_budget`] (or a `perf-model` cost-model override),
//!   and [`AssignPlanner`] caches norms and packed panels across
//!   delta-update iterations, invalidating only rows that moved.
//!
//! All four kernels preserve the workspace-wide lowest-index tie-break:
//! candidates are scanned in ascending centroid index with a strict `<`
//! comparison, and — decisively for distributed min-loc merges — the tiled
//! kernel accumulates every dot product in plain ascending-dimension order,
//! so two bitwise-equal centroid rows produce bitwise-equal scores no
//! matter where they land in the tile grid.
//!
//! For Level 3 the plan carries the per-CPE dimension slices: dots and
//! norms are computed per slice and summed, which is exact because dot
//! products are additive over disjoint dimension slices (the same identity
//! the sliced squared distance relies on).

use crate::distance::{argmin_centroid_range, dot_unrolled, sq_euclidean_unrolled};
use crate::matrix::Matrix;
use crate::scalar::Scalar;
use std::ops::Range;

/// LDM capacity of one SW26010 CPE — the default blocking budget when the
/// caller does not thread `sw-arch`'s machine parameters through.
pub const LDM_BYTES_DEFAULT: usize = 64 * 1024;

/// Micro-kernel block edge: 4 samples × 4 centroids = 16 independent
/// accumulators per inner loop (Rust's strict FP semantics make the
/// accumulator count the instruction-level parallelism).
const MR: usize = 4;
const NR: usize = 4;

/// GEMM micro-kernel block edges: 4 packed sample lanes × 8 packed
/// centroid lanes = 32 independent accumulators, and the 8 contiguous
/// centroid lanes per dimension step are exactly one f32 vector register —
/// the shape that lets the compiler lower the inner loop to
/// broadcast-×-vector multiplies.
const GEMM_MR: usize = 4;
const GEMM_NR: usize = 8;

/// Which kernel the Assign phase runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AssignKernel {
    /// Exact subtract-square scan — bit-identical to the serial reference.
    #[default]
    Scalar,
    /// Norm expansion with per-plan centroid norms (`CentroidNorms` made
    /// load-bearing): numerically different from `Scalar`, so labels can
    /// differ on near-exact ties.
    Expanded,
    /// Norm expansion over LDM-sized sample×centroid tiles with a 4×4
    /// register-blocked micro-dot kernel.
    Tiled,
    /// The expansion as a cache-blocked GEMM over packed operands with a
    /// 4×8 register-tiled micro kernel. Bitwise-identical scores to
    /// `Tiled` — every per-pair dot accumulates in the same canonical
    /// ascending-dimension order ([`dot_sliced_linear`]).
    Gemm,
}

impl AssignKernel {
    pub const ALL: [AssignKernel; 4] = [
        AssignKernel::Scalar,
        AssignKernel::Expanded,
        AssignKernel::Tiled,
        AssignKernel::Gemm,
    ];

    /// Stable lowercase name (CLI vocabulary and metrics labels).
    pub fn name(self) -> &'static str {
        match self {
            AssignKernel::Scalar => "scalar",
            AssignKernel::Expanded => "expanded",
            AssignKernel::Tiled => "tiled",
            AssignKernel::Gemm => "gemm",
        }
    }

    /// Stable numeric code for gauge export (`0 = scalar`, `1 = expanded`,
    /// `2 = tiled`, `3 = gemm`).
    pub fn code(self) -> u32 {
        match self {
            AssignKernel::Scalar => 0,
            AssignKernel::Expanded => 1,
            AssignKernel::Tiled => 2,
            AssignKernel::Gemm => 3,
        }
    }

    /// Parse a CLI spelling. Accepts the legacy serving names (`exact`,
    /// `norm-trick`) as aliases so existing invocations keep working. The
    /// error enumerates the valid names from [`AssignKernel::ALL`], so the
    /// message cannot drift as variants are added.
    pub fn parse(s: &str) -> Result<AssignKernel, String> {
        match s {
            "exact" => return Ok(AssignKernel::Scalar),
            "norm-trick" => return Ok(AssignKernel::Expanded),
            _ => {}
        }
        AssignKernel::ALL
            .into_iter()
            .find(|k| k.name() == s)
            .ok_or_else(|| {
                let names: Vec<&str> = AssignKernel::ALL.iter().map(|k| k.name()).collect();
                format!("unknown kernel `{s}` (valid: {})", names.join("|"))
            })
    }
}

impl std::fmt::Display for AssignKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for AssignKernel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        AssignKernel::parse(s)
    }
}

/// The tile grid of the blocked kernel: `samples × centroids` rows per
/// tile, sized so one tile's working set fits the LDM budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileShape {
    /// Sample rows per tile (the paper's T).
    pub samples: usize,
    /// Centroid rows per tile (the paper's B).
    pub centroids: usize,
}

impl TileShape {
    /// Derive tile sizes from an LDM budget, mirroring constraint C1: a
    /// sample tile (`T·d`), a centroid tile (`B·d`), the `T×B` score block
    /// and the per-row norm/`‖x‖²` vectors must all fit in `ldm_bytes`.
    /// The centroid tile gets at most a third of the budget; the sample
    /// tile takes what remains. Both edges round down to multiples of the
    /// 4×4 micro-kernel when possible and clamp to at least 1 — a 1×1 tile
    /// is the host-side analogue of the paper's spill-to-DDR regime (a row
    /// alone exceeds the scratchpad).
    pub fn for_budget(ldm_bytes: usize, d: usize, elem_bytes: usize) -> TileShape {
        let row = d.max(1) * elem_bytes.max(1);
        let round = |v: usize| if v >= MR { v - v % MR } else { v };
        let b = round((ldm_bytes / (3 * row)).clamp(1, 512)).max(1);
        let remaining = ldm_bytes.saturating_sub(b * row + b * elem_bytes);
        // Each extra sample row costs its data (`row`), one score row
        // (`b·e`) and one `‖x‖²` slot.
        let t = round((remaining / (row + (b + 1) * elem_bytes)).clamp(1, 512)).max(1);
        TileShape {
            samples: t,
            centroids: b,
        }
    }

    /// Bytes one tile's working set occupies under this shape.
    pub fn footprint_bytes(&self, d: usize, elem_bytes: usize) -> usize {
        let row = d.max(1) * elem_bytes;
        self.samples * row                       // sample tile
            + self.centroids * row               // centroid tile
            + self.samples * self.centroids * elem_bytes // score block
            + (self.samples + self.centroids) * elem_bytes // ‖x‖² + norms
    }
}

/// Cache-block shape of the GEMM kernel: `mc` packed sample rows stay
/// resident while packed centroid panels stream through in chunks of `nc`
/// rows.
///
/// Traffic model (shared with `perf-model`'s cost-driven refinement): with
/// the sample block resident, the centroid panels are re-streamed once per
/// sample block — panel traffic is `(n/mc)·k·d·e` bytes against sample
/// traffic of `n·d·e` — while the resident working set `(mc + nc)·d·e`
/// must fit the budget. Splitting the budget evenly between the resident
/// block and the streamed chunk balances the two streams instead of
/// hardcoding the tiled kernel's third/two-thirds split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmBlocking {
    /// Sample rows per resident block.
    pub mc: usize,
    /// Centroid rows per streamed panel chunk.
    pub nc: usize,
}

impl GemmBlocking {
    /// Normalise an arbitrary `(mc, nc)` request — e.g. `perf-model`'s
    /// cost-driven choice — to micro-kernel multiples, clamped to at least
    /// one 4×8 micro tile.
    pub fn new(mc: usize, nc: usize) -> GemmBlocking {
        GemmBlocking {
            mc: (mc.min(4096) / GEMM_MR).max(1) * GEMM_MR,
            nc: (nc.min(4096) / GEMM_NR).max(1) * GEMM_NR,
        }
    }

    /// Derive the block shape from an LDM budget: half to the resident
    /// sample block, half to the streamed centroid panel chunk.
    pub fn for_budget(ldm_bytes: usize, d: usize, elem_bytes: usize) -> GemmBlocking {
        let row = d.max(1) * elem_bytes.max(1);
        let half = (ldm_bytes / 2).max(1);
        GemmBlocking::new(half / row, half / row)
    }

    /// Bytes the resident sample block plus one streamed panel chunk
    /// occupy under this shape.
    pub fn footprint_bytes(&self, d: usize, elem_bytes: usize) -> usize {
        (self.mc + self.nc) * d.max(1) * elem_bytes
    }
}

/// A prepared Assign pass over one centroid set: the selected kernel plus
/// everything derived from the centroids (norms, tile shape, dimension
/// slices). Build it once per Update — the executors rebuild after every
/// centroid movement, which is exactly the "norms recomputed once per
/// Update" amortisation [`crate::distance::CentroidNorms`] documents.
///
/// The plan does not borrow the centroid matrix; every call takes it
/// explicitly and asserts the shape still matches, so a stale plan fails
/// loudly instead of scoring against moved centroids.
#[derive(Debug, Clone)]
pub struct AssignPlan<S: Scalar> {
    kernel: AssignKernel,
    /// Centroid row/column counts the plan was built against.
    k: usize,
    d: usize,
    /// `‖c_j‖²` per centroid row; empty for [`AssignKernel::Scalar`].
    norms: Vec<S>,
    tile: TileShape,
    /// Per-CPE dimension slices (Level 3); `None` means whole rows.
    slices: Option<Vec<Range<usize>>>,
    /// Packed centroid panels + block shape; `Some` iff `kernel == Gemm`.
    gemm: Option<GemmState<S>>,
}

/// The GEMM kernel's prepared centroid side: the block shape plus the
/// centroid rows packed into `GEMM_NR`-wide column-interleaved panels.
/// Panel `p` stores dimension `u` of absolute centroid row `p·8 + jj` at
/// element `u·8 + jj`; lanes past `k` are zero — padded lanes feed
/// accumulators the argmin fold never reads, so they cannot perturb real
/// scores. Panels sit behind an `Arc` so cloned plans (serve's sharded
/// index) and the caching [`AssignPlanner`] share one packing.
#[derive(Debug, Clone)]
struct GemmState<S: Scalar> {
    blocking: GemmBlocking,
    panels: std::sync::Arc<Vec<S>>,
}

/// Accumulation target of the fused assign–accumulate path: per-cluster
/// sums (`crows.len()·d`, row-major) and member counts, indexed by
/// `winner − crows.start`.
struct Acc<'a, S: Scalar> {
    sums: &'a mut [S],
    counts: &'a mut [u64],
}

impl<S: Scalar> AssignPlan<S> {
    /// Plan with the default LDM budget and whole-row dots.
    pub fn new(kernel: AssignKernel, centroids: &Matrix<S>) -> Self {
        Self::with_options(kernel, centroids, LDM_BYTES_DEFAULT, None)
    }

    /// Plan with an explicit LDM budget (callers with `sw-arch` in scope
    /// pass `MachineParams::taihulight().ldm_bytes`).
    pub fn with_ldm_budget(kernel: AssignKernel, centroids: &Matrix<S>, ldm_bytes: usize) -> Self {
        Self::with_options(kernel, centroids, ldm_bytes, None)
    }

    /// Full constructor. `slices`, when given, must be the contiguous
    /// ascending partition of `0..d` the Level-3 executor derives from
    /// `split_range` (empty member slices are fine); dots and norms are
    /// then computed per slice and summed — exact, because dot products
    /// are additive over disjoint dimension slices.
    pub fn with_options(
        kernel: AssignKernel,
        centroids: &Matrix<S>,
        ldm_bytes: usize,
        slices: Option<Vec<Range<usize>>>,
    ) -> Self {
        let k = centroids.rows();
        let d = centroids.cols();
        if let Some(sl) = &slices {
            let mut at = 0usize;
            for r in sl {
                assert_eq!(r.start, at, "dimension slices must be contiguous");
                assert!(r.end >= r.start && r.end <= d, "slice out of bounds");
                at = r.end;
            }
            assert_eq!(at, d, "dimension slices must cover 0..d");
        }
        let full = 0..d;
        let sl: &[Range<usize>] = slices.as_deref().unwrap_or(std::slice::from_ref(&full));
        let norms = match kernel {
            AssignKernel::Scalar => Vec::new(),
            AssignKernel::Expanded => (0..k)
                .map(|j| {
                    let row = centroids.row(j);
                    dot_sliced_unrolled(row, row, sl)
                })
                .collect(),
            // The tiled and GEMM kernels accumulate every dot in linear
            // order, so their norms must too (identical rows ⇒ identical
            // scores).
            AssignKernel::Tiled | AssignKernel::Gemm => (0..k)
                .map(|j| {
                    let row = centroids.row(j);
                    dot_sliced_linear(row, row, sl)
                })
                .collect(),
        };
        let gemm = (kernel == AssignKernel::Gemm).then(|| GemmState {
            blocking: GemmBlocking::for_budget(ldm_bytes, d, S::BYTES),
            panels: std::sync::Arc::new(pack_centroid_panels(centroids)),
        });
        AssignPlan {
            kernel,
            k,
            d,
            norms,
            tile: TileShape::for_budget(ldm_bytes, d, S::BYTES),
            slices,
            gemm,
        }
    }

    /// Override the GEMM block shape with `perf-model`'s cost-driven
    /// choice (threaded through by the executors). No-op for the other
    /// kernels, and never repacks: panels are blocking-independent.
    pub fn with_blocking(mut self, blocking: GemmBlocking) -> Self {
        if let Some(g) = self.gemm.as_mut() {
            g.blocking = GemmBlocking::new(blocking.mc, blocking.nc);
        }
        self
    }

    /// The GEMM block shape in effect (`None` for the other kernels).
    pub fn blocking(&self) -> Option<GemmBlocking> {
        self.gemm.as_ref().map(|g| g.blocking)
    }

    pub fn kernel(&self) -> AssignKernel {
        self.kernel
    }

    pub fn tile(&self) -> TileShape {
        self.tile
    }

    fn check(&self, centroids: &Matrix<S>, crows: &Range<usize>) {
        assert_eq!(
            centroids.rows(),
            self.k,
            "stale plan: centroid count changed"
        );
        assert_eq!(centroids.cols(), self.d, "stale plan: dimension changed");
        assert!(!crows.is_empty(), "empty centroid range");
        assert!(crows.end <= self.k, "centroid range out of bounds");
    }

    /// Assign every sample row in `srows` to its nearest centroid among
    /// rows `crows` of `centroids`, appending one `(index, key)` pair per
    /// sample (in `srows` order) to `out`. The index is reported from
    /// `global_offset` (i.e. `global_offset + (winner − crows.start)`),
    /// matching [`argmin_centroid_range`]. The key is the exact squared
    /// distance for `Scalar`; for `Expanded`/`Tiled` it is
    /// `‖x‖² + ‖c‖² − 2·x·c` — the same quantity up to floating-point
    /// reassociation, and computed identically on every rank, so keys stay
    /// comparable across distributed min-loc merges.
    pub fn assign_batch_into(
        &self,
        data: &Matrix<S>,
        srows: Range<usize>,
        centroids: &Matrix<S>,
        crows: Range<usize>,
        global_offset: usize,
        out: &mut Vec<(u32, S)>,
    ) {
        self.dispatch(data, srows, centroids, crows, global_offset, out, None);
    }

    /// Fused assign–accumulate: like [`AssignPlan::assign_batch_into`],
    /// but additionally folds each scored sample into per-cluster
    /// accumulators while it is still cache-resident, eliminating the
    /// separate full-data Update sweep. `sums` holds `crows.len()·d`
    /// elements (row `j − crows.start` of the winner) and `counts` one
    /// slot per `crows` row; both are accumulated into, not zeroed.
    ///
    /// Bitwise discipline: samples fold in ascending `srows` order — the
    /// scalar and expanded kernels accumulate immediately after scoring
    /// each sample, and the tiled kernel flushes each sample tile in
    /// ascending order after its centroid sweep (tiles are visited in
    /// ascending order, so the global fold sequence per cluster is the
    /// ascending sample order the two-pass sweep uses). A plan carrying
    /// Level-3 dimension slices folds per slice, modelling each CPE
    /// accumulating its own dimension slice; per-element addition makes
    /// this bitwise-identical to a whole-row fold.
    #[allow(clippy::too_many_arguments)]
    pub fn assign_accumulate_into(
        &self,
        data: &Matrix<S>,
        srows: Range<usize>,
        centroids: &Matrix<S>,
        crows: Range<usize>,
        global_offset: usize,
        out: &mut Vec<(u32, S)>,
        sums: &mut [S],
        counts: &mut [u64],
    ) {
        assert_eq!(sums.len(), crows.len() * self.d, "sums shape mismatch");
        assert_eq!(counts.len(), crows.len(), "counts shape mismatch");
        self.dispatch(
            data,
            srows,
            centroids,
            crows,
            global_offset,
            out,
            Some(Acc { sums, counts }),
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn dispatch(
        &self,
        data: &Matrix<S>,
        srows: Range<usize>,
        centroids: &Matrix<S>,
        crows: Range<usize>,
        global_offset: usize,
        out: &mut Vec<(u32, S)>,
        acc: Option<Acc<'_, S>>,
    ) {
        self.check(centroids, &crows);
        assert_eq!(data.cols(), self.d, "sample dimension mismatch");
        out.reserve(srows.len());
        match self.kernel {
            AssignKernel::Scalar => {
                self.scalar_batch(data, srows, centroids, crows, global_offset, out, acc)
            }
            AssignKernel::Expanded => {
                self.expanded_batch(data, srows, centroids, crows, global_offset, out, acc)
            }
            AssignKernel::Tiled => {
                self.tiled_batch(data, srows, centroids, crows, global_offset, out, acc)
            }
            AssignKernel::Gemm => {
                self.gemm_batch(data, srows, centroids, crows, global_offset, out, acc)
            }
        }
    }

    /// Fold one scored sample into the accumulators at `local_row`
    /// (winner − `crows.start`). Iterates the plan's dimension slices when
    /// present — each virtual CPE adds its own slice, exactly as Level 3
    /// partitions the Update — which is bitwise-identical to a whole-row
    /// add because the fold is per-element.
    fn fold_sample(&self, acc: &mut Acc<'_, S>, local_row: usize, sample: &[S]) {
        acc.counts[local_row] += 1;
        let dst = &mut acc.sums[local_row * self.d..(local_row + 1) * self.d];
        match &self.slices {
            None => {
                for (a, &x) in dst.iter_mut().zip(sample) {
                    *a += x;
                }
            }
            Some(sl) => {
                for r in sl {
                    for (a, &x) in dst[r.clone()].iter_mut().zip(&sample[r.clone()]) {
                        *a += x;
                    }
                }
            }
        }
    }

    /// Single-sample variant of [`AssignPlan::assign_batch_into`] with the
    /// same index and key semantics (serving's per-query path).
    pub fn assign_one(
        &self,
        sample: &[S],
        centroids: &Matrix<S>,
        crows: Range<usize>,
        global_offset: usize,
    ) -> (u32, S) {
        self.check(centroids, &crows);
        assert_eq!(sample.len(), self.d, "sample dimension mismatch");
        let full = 0..self.d;
        let sl: &[Range<usize>] = self
            .slices
            .as_deref()
            .unwrap_or(std::slice::from_ref(&full));
        match self.kernel {
            AssignKernel::Scalar => match &self.slices {
                None => {
                    let (j, dist) = argmin_centroid_range(sample, centroids, crows, global_offset);
                    (j as u32, dist)
                }
                Some(sl) => {
                    let (j, dist) = scalar_sliced_argmin(sample, centroids, &crows, sl);
                    ((global_offset + (j - crows.start)) as u32, dist)
                }
            },
            AssignKernel::Expanded | AssignKernel::Tiled | AssignKernel::Gemm => {
                // One sample degenerates the block grid to a column of
                // per-pair dots — identical values to the blocked paths by
                // the shared accumulation order of [`AssignPlan::pair_dot`].
                let x2 = self.pair_dot(sample, sample, sl);
                let (j, score) =
                    self.score_scan(sample, centroids, &crows, |a, b| self.pair_dot(a, b, sl));
                ((global_offset + (j - crows.start)) as u32, x2 + score)
            }
        }
    }

    /// The one per-pair dot kernel behind [`AssignPlan::score_pair`],
    /// [`AssignPlan::key_to_dist`] and [`AssignPlan::assign_one`]: 4-way
    /// unrolled for `Expanded`, the canonical ascending (linear) order for
    /// `Tiled`/`Gemm` — the exact per-pair sequence their blocked kernels
    /// reproduce. `Scalar` takes the subtract-square path and never calls
    /// it.
    #[inline]
    fn pair_dot(&self, a: &[S], b: &[S], sl: &[Range<usize>]) -> S {
        match self.kernel {
            AssignKernel::Expanded => dot_sliced_unrolled(a, b, sl),
            _ => dot_sliced_linear(a, b, sl),
        }
    }

    /// The exact comparison key the full scan evaluates for the single
    /// pair (`sample`, centroid row `j`): the squared distance for
    /// `Scalar`, the `‖c‖² − 2·x·c` score for `Expanded`/`Tiled`.
    ///
    /// Per-pair keys are batch-independent — the tiled micro kernel and
    /// every edge fallback accumulate each dot in the same ascending order
    /// (see [`dot_sliced_linear`]) — so a scan that lexicographically
    /// minimises `(score_pair, j)` over *any* candidate subset reproduces
    /// the batch scan's winner over that subset bit for bit. This is what
    /// lets the delta update path rescore only the centroids that moved.
    pub fn score_pair(&self, sample: &[S], centroids: &Matrix<S>, j: usize) -> S {
        self.check(centroids, &(j..j + 1));
        let full = 0..self.d;
        let sl: &[Range<usize>] = self
            .slices
            .as_deref()
            .unwrap_or(std::slice::from_ref(&full));
        let two = S::from_f64(2.0);
        let row = centroids.row(j);
        match self.kernel {
            AssignKernel::Scalar => match &self.slices {
                None => sq_euclidean_unrolled(sample, row),
                Some(sl) => {
                    let mut acc = S::ZERO;
                    for r in sl {
                        acc += sq_euclidean_unrolled(&sample[r.clone()], &row[r.clone()]);
                    }
                    acc
                }
            },
            AssignKernel::Expanded | AssignKernel::Tiled | AssignKernel::Gemm => {
                self.norms[j] - two * self.pair_dot(sample, row, sl)
            }
        }
    }

    /// Convert a winning [`AssignPlan::score_pair`] key into the distance
    /// value [`AssignPlan::assign_batch_into`] reports for that sample
    /// (`‖x‖²` is added back for the expanded forms, in the same order the
    /// batch kernels use).
    pub fn key_to_dist(&self, sample: &[S], key: S) -> S {
        let full = 0..self.d;
        let sl: &[Range<usize>] = self
            .slices
            .as_deref()
            .unwrap_or(std::slice::from_ref(&full));
        match self.kernel {
            AssignKernel::Scalar => key,
            AssignKernel::Expanded | AssignKernel::Tiled | AssignKernel::Gemm => {
                self.pair_dot(sample, sample, sl) + key
            }
        }
    }

    /// Ascending-index strict-`<` scan of `‖c‖² − 2·x·c` with a caller-
    /// supplied dot kernel. Returns the winning absolute row and score.
    fn score_scan(
        &self,
        sample: &[S],
        centroids: &Matrix<S>,
        crows: &Range<usize>,
        dot: impl Fn(&[S], &[S]) -> S,
    ) -> (usize, S) {
        let two = S::from_f64(2.0);
        let mut best_j = crows.start;
        let mut best = self.norms[crows.start] - two * dot(sample, centroids.row(crows.start));
        for j in crows.start + 1..crows.end {
            let score = self.norms[j] - two * dot(sample, centroids.row(j));
            if score < best {
                best = score;
                best_j = j;
            }
        }
        (best_j, best)
    }

    #[allow(clippy::too_many_arguments)]
    fn scalar_batch(
        &self,
        data: &Matrix<S>,
        srows: Range<usize>,
        centroids: &Matrix<S>,
        crows: Range<usize>,
        global_offset: usize,
        out: &mut Vec<(u32, S)>,
        mut acc: Option<Acc<'_, S>>,
    ) {
        match &self.slices {
            None => {
                for i in srows {
                    let (j, dist) =
                        argmin_centroid_range(data.row(i), centroids, crows.clone(), global_offset);
                    out.push((j as u32, dist));
                    if let Some(acc) = acc.as_mut() {
                        self.fold_sample(acc, j - global_offset, data.row(i));
                    }
                }
            }
            Some(sl) => {
                for i in srows {
                    let (j, dist) = scalar_sliced_argmin(data.row(i), centroids, &crows, sl);
                    out.push(((global_offset + (j - crows.start)) as u32, dist));
                    if let Some(acc) = acc.as_mut() {
                        self.fold_sample(acc, j - crows.start, data.row(i));
                    }
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn expanded_batch(
        &self,
        data: &Matrix<S>,
        srows: Range<usize>,
        centroids: &Matrix<S>,
        crows: Range<usize>,
        global_offset: usize,
        out: &mut Vec<(u32, S)>,
        mut acc: Option<Acc<'_, S>>,
    ) {
        let full = 0..self.d;
        let sl: &[Range<usize>] = self
            .slices
            .as_deref()
            .unwrap_or(std::slice::from_ref(&full));
        for i in srows {
            let sample = data.row(i);
            let x2 = dot_sliced_unrolled(sample, sample, sl);
            let (j, score) = self.score_scan(sample, centroids, &crows, |a, b| {
                dot_sliced_unrolled(a, b, sl)
            });
            out.push(((global_offset + (j - crows.start)) as u32, x2 + score));
            if let Some(acc) = acc.as_mut() {
                self.fold_sample(acc, j - crows.start, sample);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn tiled_batch(
        &self,
        data: &Matrix<S>,
        srows: Range<usize>,
        centroids: &Matrix<S>,
        crows: Range<usize>,
        global_offset: usize,
        out: &mut Vec<(u32, S)>,
        mut acc: Option<Acc<'_, S>>,
    ) {
        let full = 0..self.d;
        let sl: &[Range<usize>] = self
            .slices
            .as_deref()
            .unwrap_or(std::slice::from_ref(&full));
        let two = S::from_f64(2.0);
        let inf = S::from_f64(f64::INFINITY);
        let ts = self.tile.samples.max(1);
        let tc = self.tile.centroids.max(1);
        let mut x2 = vec![S::ZERO; ts];
        // (absolute centroid row, running best score) per sample of the tile.
        let mut best = vec![(u32::MAX, inf); ts];
        let mut s0 = srows.start;
        while s0 < srows.end {
            let s1 = (s0 + ts).min(srows.end);
            let m = s1 - s0;
            for (ii, slot) in best.iter_mut().enumerate().take(m) {
                let row = data.row(s0 + ii);
                x2[ii] = dot_sliced_linear(row, row, sl);
                *slot = (u32::MAX, inf);
            }
            let mut c0 = crows.start;
            while c0 < crows.end {
                let c1 = (c0 + tc).min(crows.end);
                self.score_tile(data, s0, m, centroids, c0, c1, sl, two, &mut best);
                c0 = c1;
            }
            // Flush the sample tile in ascending order while it is still
            // cache-resident: with tiles visited in ascending order this
            // reproduces the two-pass sweep's global ascending-sample fold
            // per cluster, bit for bit.
            for ii in 0..m {
                let (j, score) = best[ii];
                debug_assert_ne!(j, u32::MAX);
                out.push((
                    (global_offset + (j as usize - crows.start)) as u32,
                    x2[ii] + score,
                ));
                if let Some(acc) = acc.as_mut() {
                    self.fold_sample(acc, j as usize - crows.start, data.row(s0 + ii));
                }
            }
            s0 = s1;
        }
    }

    /// Score one sample tile (`m` rows from `s0`) against one centroid
    /// tile (`c0..c1`), folding winners into `best`. Full 4×4 blocks run
    /// the register-blocked micro kernel; edge blocks fall back to
    /// per-pair linear dots, which produce bitwise-identical values
    /// because both accumulate in ascending-dimension order.
    #[allow(clippy::too_many_arguments)]
    fn score_tile(
        &self,
        data: &Matrix<S>,
        s0: usize,
        m: usize,
        centroids: &Matrix<S>,
        c0: usize,
        c1: usize,
        sl: &[Range<usize>],
        two: S,
        best: &mut [(u32, S)],
    ) {
        let mut ii = 0;
        while ii < m {
            let mr = (m - ii).min(MR);
            let mut j = c0;
            while j < c1 {
                let nr = (c1 - j).min(NR);
                if mr == MR && nr == NR {
                    let a = [
                        data.row(s0 + ii),
                        data.row(s0 + ii + 1),
                        data.row(s0 + ii + 2),
                        data.row(s0 + ii + 3),
                    ];
                    let b = [
                        centroids.row(j),
                        centroids.row(j + 1),
                        centroids.row(j + 2),
                        centroids.row(j + 3),
                    ];
                    let mut acc = [[S::ZERO; NR]; MR];
                    for r in sl {
                        micro_dots_4x4(&a, &b, r.clone(), &mut acc);
                    }
                    for (bi, row) in acc.iter().enumerate() {
                        let slot = &mut best[ii + bi];
                        for (bj, &dot) in row.iter().enumerate() {
                            let score = self.norms[j + bj] - two * dot;
                            if score < slot.1 {
                                *slot = ((j + bj) as u32, score);
                            }
                        }
                    }
                } else {
                    for bi in 0..mr {
                        let sample = data.row(s0 + ii + bi);
                        let slot = &mut best[ii + bi];
                        for bj in 0..nr {
                            let dot = dot_sliced_linear(sample, centroids.row(j + bj), sl);
                            let score = self.norms[j + bj] - two * dot;
                            if score < slot.1 {
                                *slot = ((j + bj) as u32, score);
                            }
                        }
                    }
                }
                j += nr;
            }
            ii += mr;
        }
    }

    /// The cache-blocked GEMM path: a resident block of `mc` packed sample
    /// rows is scored against the streamed packed centroid panels, `nc`
    /// rows per chunk, with the 4×8 register-tiled micro kernel computing
    /// the `X·Cᵀ` dot block and the fold adding broadcast norms
    /// (`‖c‖² − 2·x·c`) under the ascending-index strict-`<` argmin.
    ///
    /// Bitwise discipline: the micro kernel advances each of its 32
    /// accumulators in canonical ascending-dimension order, so every
    /// (sample, centroid) dot is bitwise-equal to [`dot_sliced_linear`]
    /// and the whole path scores bitwise-identically to `Tiled`. Panels
    /// are folded in ascending order per sample, edge panels/blocks are
    /// zero-padded (their padded lanes feed accumulators the fold clamps
    /// away via `crows`), and the block flushes in ascending sample order —
    /// the same fused-fold discipline as the tiled kernel. `crows` may
    /// start or end mid-panel (serve's shard subranges); the fold clamp
    /// handles that too, since panels always cover absolute rows `0..k`.
    #[allow(clippy::too_many_arguments)]
    fn gemm_batch(
        &self,
        data: &Matrix<S>,
        srows: Range<usize>,
        // Scores come from the packed panels; `dispatch` already verified
        // the matrix still matches the plan's shape.
        _centroids: &Matrix<S>,
        crows: Range<usize>,
        global_offset: usize,
        out: &mut Vec<(u32, S)>,
        mut acc: Option<Acc<'_, S>>,
    ) {
        let full = 0..self.d;
        let sl: &[Range<usize>] = self
            .slices
            .as_deref()
            .unwrap_or(std::slice::from_ref(&full));
        let st = self.gemm.as_ref().expect("gemm plan without packed state");
        let d = self.d;
        let two = S::from_f64(2.0);
        let inf = S::from_f64(f64::INFINITY);
        let mc = st.blocking.mc;
        let panels_per_chunk = (st.blocking.nc / GEMM_NR).max(1);
        let p_lo = crows.start / GEMM_NR;
        let p_hi = crows.end.div_ceil(GEMM_NR);
        let mut xpack = vec![S::ZERO; mc * d.max(1)];
        let mut x2 = vec![S::ZERO; mc];
        // (absolute centroid row, running best score) per sample of the block.
        let mut best = vec![(u32::MAX, inf); mc];
        let mut s0 = srows.start;
        while s0 < srows.end {
            let m = (srows.end - s0).min(mc);
            let groups = m.div_ceil(GEMM_MR);
            if !m.is_multiple_of(GEMM_MR) {
                // Zero the edge group so its padded sample lanes hold
                // zeros (their accumulators are computed but never read).
                for v in xpack[(groups - 1) * GEMM_MR * d..groups * GEMM_MR * d].iter_mut() {
                    *v = S::ZERO;
                }
            }
            for ii in 0..m {
                let row = data.row(s0 + ii);
                x2[ii] = dot_sliced_linear(row, row, sl);
                best[ii] = (u32::MAX, inf);
                let dst = &mut xpack[(ii / GEMM_MR) * GEMM_MR * d..];
                let lane = ii % GEMM_MR;
                for (u, &x) in row.iter().enumerate() {
                    dst[u * GEMM_MR + lane] = x;
                }
            }
            let mut pc = p_lo;
            while pc < p_hi {
                let pend = (pc + panels_per_chunk).min(p_hi);
                for g in 0..groups {
                    let xg = &xpack[g * GEMM_MR * d..(g + 1) * GEMM_MR * d];
                    let rows = (m - g * GEMM_MR).min(GEMM_MR);
                    for p in pc..pend {
                        let panel = &st.panels[p * GEMM_NR * d..(p + 1) * GEMM_NR * d];
                        let mut dots = [[S::ZERO; GEMM_NR]; GEMM_MR];
                        gemm_micro(xg, panel, d, &mut dots);
                        let jbase = p * GEMM_NR;
                        let lo = crows.start.max(jbase);
                        let hi = crows.end.min(jbase + GEMM_NR);
                        for (ii, drow) in dots.iter().enumerate().take(rows) {
                            let slot = &mut best[g * GEMM_MR + ii];
                            for j in lo..hi {
                                let score = self.norms[j] - two * drow[j - jbase];
                                if score < slot.1 {
                                    *slot = (j as u32, score);
                                }
                            }
                        }
                    }
                }
                pc = pend;
            }
            // Flush the block in ascending sample order while it is still
            // cache-resident (the fused-fold discipline shared with the
            // tiled kernel).
            for ii in 0..m {
                let (j, score) = best[ii];
                debug_assert_ne!(j, u32::MAX);
                out.push((
                    (global_offset + (j as usize - crows.start)) as u32,
                    x2[ii] + score,
                ));
                if let Some(acc) = acc.as_mut() {
                    self.fold_sample(acc, j as usize - crows.start, data.row(s0 + ii));
                }
            }
            s0 += m;
        }
    }
}

/// The Level-3 Scalar path: per-slice partial squared distances folded in
/// slice order, scanned in ascending centroid index with strict `<` — the
/// executor's historical inner loop, verbatim.
fn scalar_sliced_argmin<S: Scalar>(
    sample: &[S],
    centroids: &Matrix<S>,
    crows: &Range<usize>,
    sl: &[Range<usize>],
) -> (usize, S) {
    let sliced = |j: usize| {
        let row = centroids.row(j);
        let mut acc = S::ZERO;
        for r in sl {
            acc += sq_euclidean_unrolled(&sample[r.clone()], &row[r.clone()]);
        }
        acc
    };
    let mut best_j = crows.start;
    let mut best = sliced(crows.start);
    for j in crows.start + 1..crows.end {
        let d = sliced(j);
        if d < best {
            best = d;
            best_j = j;
        }
    }
    (best_j, best)
}

/// Plain ascending-order dot product summed over dimension slices. This is
/// the *canonical accumulation order* of the tiled kernel: the 4×4 micro
/// kernel and every edge fallback reproduce exactly this sequence of
/// fused adds per (sample, centroid) pair.
pub fn dot_sliced_linear<S: Scalar>(a: &[S], b: &[S], slices: &[Range<usize>]) -> S {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = S::ZERO;
    for r in slices {
        let (xa, xb) = (&a[r.clone()], &b[r.clone()]);
        for (x, y) in xa.iter().zip(xb) {
            acc += *x * *y;
        }
    }
    acc
}

/// 4-way-unrolled dot product summed over dimension slices (the Expanded
/// kernel's dot; matches [`dot_unrolled`] when there is a single slice).
pub fn dot_sliced_unrolled<S: Scalar>(a: &[S], b: &[S], slices: &[Range<usize>]) -> S {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = S::ZERO;
    for r in slices {
        acc += dot_unrolled(&a[r.clone()], &b[r.clone()]);
    }
    acc
}

/// The register-blocked micro kernel: 16 dot-product accumulators advanced
/// together over `range`, each in ascending-dimension order (bitwise equal
/// to [`dot_sliced_linear`] restricted to that range). Loading 4 sample
/// and 4 centroid values per step gives 4× register reuse of each row and
/// 16 independent FMA chains.
fn micro_dots_4x4<S: Scalar>(
    a: &[&[S]; MR],
    b: &[&[S]; NR],
    range: Range<usize>,
    acc: &mut [[S; NR]; MR],
) {
    for u in range {
        let av = [a[0][u], a[1][u], a[2][u], a[3][u]];
        let bv = [b[0][u], b[1][u], b[2][u], b[3][u]];
        for (row, &x) in acc.iter_mut().zip(&av) {
            for (cell, &y) in row.iter_mut().zip(&bv) {
                *cell += x * y;
            }
        }
    }
}

/// The GEMM micro kernel: a 4×8 register tile of dot products advanced
/// together over the packed operands — `xg` holds 4 sample lanes
/// interleaved per dimension, `panel` 8 centroid lanes. Each of the 32
/// accumulators is its own sequential ascending-dimension chain, bitwise
/// equal to [`dot_sliced_linear`] for its (sample, centroid) pair.
///
/// For `f32` on x86-64 the body is the explicit lane-unrolled AVX form:
/// per dimension, one 8-wide panel load, four sample broadcasts, and four
/// unfused multiply-then-add pairs. `vmulps`/`vaddps` are exact IEEE
/// single-precision operations applied per lane in the same mul-then-add
/// sequence as the scalar chain, so the specialisation is bitwise-
/// identical to the generic body — it only widens the lanes the hardware
/// retires per cycle (fused `vfmadd` would round once instead of twice
/// and is deliberately not used).
#[inline]
fn gemm_micro<S: Scalar>(xg: &[S], panel: &[S], d: usize, acc: &mut [[S; GEMM_NR]; GEMM_MR]) {
    debug_assert!(xg.len() >= d * GEMM_MR);
    debug_assert!(panel.len() >= d * GEMM_NR);
    #[cfg(target_arch = "x86_64")]
    if std::any::TypeId::of::<S>() == std::any::TypeId::of::<f32>()
        && std::arch::is_x86_feature_detected!("avx")
    {
        // SAFETY: the TypeId check proves `S` is exactly `f32`, so these
        // reinterpretations are between identical types, and the length
        // preconditions are the debug-asserted ones above.
        unsafe {
            let xf = std::slice::from_raw_parts(xg.as_ptr() as *const f32, xg.len());
            let pf = std::slice::from_raw_parts(panel.as_ptr() as *const f32, panel.len());
            let af = &mut *(acc as *mut [[S; GEMM_NR]; GEMM_MR] as *mut [[f32; GEMM_NR]; GEMM_MR]);
            gemm_micro_f32_avx(xf, pf, d, af);
        }
        return;
    }
    gemm_micro_generic(xg, panel, d, acc)
}

/// Portable body of [`gemm_micro`] (f64, and f32 without AVX):
/// bounds-check-free iteration with local accumulator registers.
#[inline]
fn gemm_micro_generic<S: Scalar>(
    xg: &[S],
    panel: &[S],
    d: usize,
    acc: &mut [[S; GEMM_NR]; GEMM_MR],
) {
    let [mut a0, mut a1, mut a2, mut a3] = *acc;
    for (av, bv) in xg
        .chunks_exact(GEMM_MR)
        .zip(panel.chunks_exact(GEMM_NR))
        .take(d)
    {
        let (x0, x1, x2, x3) = (av[0], av[1], av[2], av[3]);
        for jj in 0..GEMM_NR {
            let y = bv[jj];
            a0[jj] += x0 * y;
            a1[jj] += x1 * y;
            a2[jj] += x2 * y;
            a3[jj] += x3 * y;
        }
    }
    *acc = [a0, a1, a2, a3];
}

/// Explicit-lane AVX form of the micro kernel (see [`gemm_micro`] for the
/// bitwise-equivalence argument).
///
/// # Safety
/// Requires AVX, `xg.len() >= d·4` and `panel.len() >= d·8`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn gemm_micro_f32_avx(
    xg: &[f32],
    panel: &[f32],
    d: usize,
    acc: &mut [[f32; GEMM_NR]; GEMM_MR],
) {
    use std::arch::x86_64::*;
    let mut a0 = _mm256_loadu_ps(acc[0].as_ptr());
    let mut a1 = _mm256_loadu_ps(acc[1].as_ptr());
    let mut a2 = _mm256_loadu_ps(acc[2].as_ptr());
    let mut a3 = _mm256_loadu_ps(acc[3].as_ptr());
    let mut xp = xg.as_ptr();
    let mut pp = panel.as_ptr();
    for _ in 0..d {
        let b = _mm256_loadu_ps(pp);
        a0 = _mm256_add_ps(a0, _mm256_mul_ps(_mm256_broadcast_ss(&*xp), b));
        a1 = _mm256_add_ps(a1, _mm256_mul_ps(_mm256_broadcast_ss(&*xp.add(1)), b));
        a2 = _mm256_add_ps(a2, _mm256_mul_ps(_mm256_broadcast_ss(&*xp.add(2)), b));
        a3 = _mm256_add_ps(a3, _mm256_mul_ps(_mm256_broadcast_ss(&*xp.add(3)), b));
        xp = xp.add(GEMM_MR);
        pp = pp.add(GEMM_NR);
    }
    _mm256_storeu_ps(acc[0].as_mut_ptr(), a0);
    _mm256_storeu_ps(acc[1].as_mut_ptr(), a1);
    _mm256_storeu_ps(acc[2].as_mut_ptr(), a2);
    _mm256_storeu_ps(acc[3].as_mut_ptr(), a3);
}

/// Pack every centroid row into `GEMM_NR`-wide column-interleaved panels
/// (see [`GemmState`] for the layout). Lanes past `k` are zeroed.
fn pack_centroid_panels<S: Scalar>(centroids: &Matrix<S>) -> Vec<S> {
    let (k, d) = (centroids.rows(), centroids.cols());
    let panels = k.div_ceil(GEMM_NR).max(1);
    let mut out = vec![S::ZERO; panels * d * GEMM_NR];
    for (p, dst) in out.chunks_exact_mut(d * GEMM_NR).enumerate() {
        pack_one_panel(centroids, p, dst);
    }
    out
}

/// (Re)pack panel `p` — absolute centroid rows `p·8 .. p·8+8` — into
/// `dst`, zeroing lanes past `k` so stale values never survive a refresh.
fn pack_one_panel<S: Scalar>(centroids: &Matrix<S>, p: usize, dst: &mut [S]) {
    let (k, d) = (centroids.rows(), centroids.cols());
    debug_assert_eq!(dst.len(), d * GEMM_NR);
    for jj in 0..GEMM_NR {
        let j = p * GEMM_NR + jj;
        if j < k {
            for (u, &x) in centroids.row(j).iter().enumerate() {
                dst[u * GEMM_NR + jj] = x;
            }
        } else {
            for u in 0..d {
                dst[u * GEMM_NR + jj] = S::ZERO;
            }
        }
    }
}

/// Cumulative cache counters of an [`AssignPlanner`], exported as gauges
/// by the executors and recorded by the bench snapshot to quantify the
/// delta-path plan-prep win.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlannerStats {
    /// Plans produced.
    pub plans: u64,
    /// Centroid rows whose norms (and packed panel lanes) were recomputed.
    pub rows_refreshed: u64,
    /// Rows carried over unchanged from the previous plan.
    pub rows_reused: u64,
    /// Packed GEMM panels rebuilt (a panel is touched iff any of its 8
    /// rows moved).
    pub panels_rebuilt: u64,
    /// Packed GEMM panels carried over untouched.
    pub panels_reused: u64,
}

/// Builds [`AssignPlan`]s across training iterations, caching what
/// centroid movement does not invalidate: per-row norms and, for the GEMM
/// kernel, the packed centroid panels. Rows are diffed bitwise
/// ([`Scalar::bits`]) against a snapshot of the previous centroids —
/// recomputing an unchanged row would produce bitwise-identical values, so
/// reuse cannot change any result; it only removes the per-iteration
/// `O(k·d)` norm/pack work that the delta update path's low-churn tail
/// otherwise re-pays every iteration. Executors that already know exactly
/// which rows moved (the delta paths' changed-row detection) skip the diff
/// via [`AssignPlanner::plan_with_changed`].
#[derive(Debug, Clone)]
pub struct AssignPlanner<S: Scalar> {
    kernel: AssignKernel,
    ldm_bytes: usize,
    slices: Option<Vec<Range<usize>>>,
    blocking: Option<GemmBlocking>,
    /// Flat snapshot (`k·d`) of the centroids the cache was built against.
    snap: Vec<S>,
    k: usize,
    d: usize,
    norms: Vec<S>,
    panels: std::sync::Arc<Vec<S>>,
    tile: TileShape,
    stats: PlannerStats,
}

impl<S: Scalar> AssignPlanner<S> {
    pub fn new(kernel: AssignKernel, ldm_bytes: usize) -> Self {
        AssignPlanner {
            kernel,
            ldm_bytes,
            slices: None,
            blocking: None,
            snap: Vec::new(),
            k: 0,
            d: 0,
            norms: Vec::new(),
            panels: std::sync::Arc::new(Vec::new()),
            tile: TileShape {
                samples: 1,
                centroids: 1,
            },
            stats: PlannerStats::default(),
        }
    }

    /// Thread the Level-3 per-CPE dimension slices through every plan.
    pub fn with_slices(mut self, slices: Option<Vec<Range<usize>>>) -> Self {
        self.slices = slices;
        self
    }

    /// Pin the GEMM block shape (the cost-model-driven choice from
    /// `perf-model`) instead of the LDM-budget default.
    pub fn with_blocking(mut self, blocking: GemmBlocking) -> Self {
        self.blocking = Some(GemmBlocking::new(blocking.mc, blocking.nc));
        self
    }

    pub fn kernel(&self) -> AssignKernel {
        self.kernel
    }

    pub fn stats(&self) -> PlannerStats {
        self.stats
    }

    /// Produce the plan for this iteration's centroids, reusing every
    /// cached row whose bits did not change since the previous call.
    pub fn plan(&mut self, centroids: &Matrix<S>) -> AssignPlan<S> {
        match self.changed_rows(centroids) {
            Some(changed) => self.refresh(centroids, &changed),
            None => self.full_build(centroids),
        }
    }

    /// Like [`AssignPlanner::plan`], but with the caller's exact changed-row
    /// set (`changed[j]` ⇔ row `j`'s bits differ from the previous
    /// iteration) instead of a snapshot diff — the delta executors already
    /// compute this to drive their skip-scan. Falls back to a full build
    /// when the cache is cold or shapes changed.
    pub fn plan_with_changed(&mut self, centroids: &Matrix<S>, changed: &[bool]) -> AssignPlan<S> {
        if self.cache_warm(centroids) && changed.len() == centroids.rows() {
            let changed = changed.to_vec();
            self.refresh(centroids, &changed)
        } else {
            self.full_build(centroids)
        }
    }

    fn cache_warm(&self, centroids: &Matrix<S>) -> bool {
        self.kernel != AssignKernel::Scalar
            && self.k == centroids.rows()
            && self.d == centroids.cols()
            && self.snap.len() == self.k * self.d
            && self.norms.len() == self.k
    }

    fn changed_rows(&self, centroids: &Matrix<S>) -> Option<Vec<bool>> {
        if !self.cache_warm(centroids) {
            return None;
        }
        let d = self.d;
        Some(
            (0..self.k)
                .map(|j| {
                    centroids
                        .row(j)
                        .iter()
                        .zip(&self.snap[j * d..(j + 1) * d])
                        .any(|(a, b)| a.bits() != b.bits())
                })
                .collect(),
        )
    }

    fn full_build(&mut self, centroids: &Matrix<S>) -> AssignPlan<S> {
        let mut plan =
            AssignPlan::with_options(self.kernel, centroids, self.ldm_bytes, self.slices.clone());
        if let Some(b) = self.blocking {
            plan = plan.with_blocking(b);
        }
        self.stats.plans += 1;
        if self.kernel != AssignKernel::Scalar {
            self.stats.rows_refreshed += centroids.rows() as u64;
            self.k = centroids.rows();
            self.d = centroids.cols();
            self.snap.clear();
            self.snap.extend_from_slice(centroids.as_slice());
            self.norms.clone_from(&plan.norms);
            self.tile = plan.tile;
            if let Some(g) = &plan.gemm {
                self.stats.panels_rebuilt += self.k.div_ceil(GEMM_NR).max(1) as u64;
                self.panels = g.panels.clone();
            }
        }
        plan
    }

    fn refresh(&mut self, centroids: &Matrix<S>, changed: &[bool]) -> AssignPlan<S> {
        let (k, d) = (self.k, self.d);
        let full = 0..d;
        let slv = self.slices.clone();
        let sl: &[Range<usize>] = slv.as_deref().unwrap_or(std::slice::from_ref(&full));
        let mut refreshed = 0u64;
        for (j, &moved) in changed.iter().enumerate() {
            if moved {
                let row = centroids.row(j);
                self.norms[j] = match self.kernel {
                    AssignKernel::Expanded => dot_sliced_unrolled(row, row, sl),
                    _ => dot_sliced_linear(row, row, sl),
                };
                self.snap[j * d..(j + 1) * d].copy_from_slice(row);
                refreshed += 1;
            }
        }
        self.stats.plans += 1;
        self.stats.rows_refreshed += refreshed;
        self.stats.rows_reused += k as u64 - refreshed;
        let gemm = (self.kernel == AssignKernel::Gemm).then(|| {
            let n_panels = k.div_ceil(GEMM_NR).max(1);
            let touched: Vec<usize> = (0..n_panels)
                .filter(|&p| (p * GEMM_NR..((p + 1) * GEMM_NR).min(k)).any(|j| changed[j]))
                .collect();
            if !touched.is_empty() {
                // Clone-on-write: plans returned earlier may still hold
                // the Arc; executors drop them before re-planning, so this
                // stays an in-place repack of just the touched panels.
                let buf = std::sync::Arc::make_mut(&mut self.panels);
                for &p in &touched {
                    pack_one_panel(
                        centroids,
                        p,
                        &mut buf[p * GEMM_NR * d..(p + 1) * GEMM_NR * d],
                    );
                }
            }
            self.stats.panels_rebuilt += touched.len() as u64;
            self.stats.panels_reused += (n_panels - touched.len()) as u64;
            GemmState {
                blocking: self
                    .blocking
                    .unwrap_or_else(|| GemmBlocking::for_budget(self.ldm_bytes, d, S::BYTES)),
                panels: self.panels.clone(),
            }
        });
        AssignPlan {
            kernel: self.kernel,
            k,
            d,
            norms: self.norms.clone(),
            tile: self.tile,
            slices: self.slices.clone(),
            gemm,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::argmin_centroid;
    use crate::init::{init_centroids, InitMethod};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<f64> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Matrix::from_vec(
            rows,
            cols,
            (0..rows * cols).map(|_| rng.gen_range(-3.0..3.0)).collect(),
        )
    }

    fn batch(
        plan: &AssignPlan<f64>,
        data: &Matrix<f64>,
        centroids: &Matrix<f64>,
    ) -> Vec<(u32, f64)> {
        let mut out = Vec::new();
        plan.assign_batch_into(
            data,
            0..data.rows(),
            centroids,
            0..centroids.rows(),
            0,
            &mut out,
        );
        out
    }

    #[test]
    fn score_pair_reconstructs_the_batch_scan_bitwise() {
        // Ragged shapes exercise both the 4×4 micro kernel and the edge
        // fallbacks of the tiled path; the sliced variant exercises the
        // Level-3 per-CPE arithmetic.
        let data = random_matrix(37, 23, 1);
        let centroids = random_matrix(11, 23, 2);
        let slice_sets: [Option<Vec<Range<usize>>>; 2] =
            [None, Some(vec![0..9, 9..10, 10..10, 10..23])];
        for kernel in AssignKernel::ALL {
            for slices in &slice_sets {
                let plan =
                    AssignPlan::with_options(kernel, &centroids, LDM_BYTES_DEFAULT, slices.clone());
                let out = batch(&plan, &data, &centroids);
                for (i, batch_out) in out.iter().enumerate() {
                    let sample = data.row(i);
                    // Lexicographic min over per-pair keys == the batch
                    // scan's strict-`<` ascending-index winner.
                    let (best_j, best_key) = (0..centroids.rows())
                        .map(|j| (j, plan.score_pair(sample, &centroids, j)))
                        .fold(None::<(usize, f64)>, |acc, (j, key)| match acc {
                            Some((_, bk)) if bk <= key => acc,
                            _ => Some((j, key)),
                        })
                        .unwrap();
                    assert_eq!(batch_out.0 as usize, best_j, "{kernel} sample {i}");
                    assert_eq!(
                        batch_out.1.to_bits(),
                        plan.key_to_dist(sample, best_key).to_bits(),
                        "{kernel} sample {i}: key→dist mismatch"
                    );
                }
            }
        }
    }

    #[test]
    fn kernel_names_codes_and_parsing() {
        // Round trip every variant through name → parse and Display →
        // FromStr, so a new variant cannot ship without its spelling.
        for k in AssignKernel::ALL {
            assert_eq!(AssignKernel::parse(k.name()), Ok(k));
            assert_eq!(format!("{k}").parse::<AssignKernel>(), Ok(k));
        }
        assert_eq!(AssignKernel::parse("exact"), Ok(AssignKernel::Scalar));
        assert_eq!(
            AssignKernel::parse("norm-trick"),
            Ok(AssignKernel::Expanded)
        );
        assert_eq!(AssignKernel::default(), AssignKernel::Scalar);
        let codes: Vec<u32> = AssignKernel::ALL.iter().map(|k| k.code()).collect();
        assert_eq!(codes, vec![0, 1, 2, 3]);
        // The parse error enumerates every valid name.
        let err = AssignKernel::parse("warp-drive").unwrap_err();
        for k in AssignKernel::ALL {
            assert!(
                err.contains(k.name()),
                "error must list `{}`: {err}",
                k.name()
            );
        }
    }

    #[test]
    fn tile_shape_respects_budget() {
        for d in [1usize, 4, 16, 64, 100, 256, 1_000, 4_096] {
            for e in [4usize, 8] {
                for ldm in [1usize << 12, LDM_BYTES_DEFAULT, 1 << 20] {
                    let t = TileShape::for_budget(ldm, d, e);
                    assert!(t.samples >= 1 && t.centroids >= 1, "d={d} e={e}");
                    if t.samples > 1 || t.centroids > 1 {
                        assert!(
                            t.footprint_bytes(d, e) <= ldm,
                            "d={d} e={e} ldm={ldm}: {t:?} uses {} B",
                            t.footprint_bytes(d, e)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn huge_rows_degenerate_to_1x1_spill() {
        // One f32 row of the paper's d=196608 is 768 KB > 64 KB LDM:
        // the tile degenerates exactly where C1 forces a spill.
        let t = TileShape::for_budget(LDM_BYTES_DEFAULT, 196_608, 4);
        assert_eq!(
            t,
            TileShape {
                samples: 1,
                centroids: 1
            }
        );
    }

    #[test]
    fn default_budget_tiles_are_multiples_of_the_micro_kernel() {
        let t = TileShape::for_budget(LDM_BYTES_DEFAULT, 64, 4);
        assert_eq!(t.samples % 4, 0);
        assert_eq!(t.centroids % 4, 0);
        assert!(t.samples >= 16 && t.centroids >= 16, "{t:?}");
    }

    #[test]
    fn scalar_plan_is_bitwise_identical_to_argmin_centroid() {
        let data = random_matrix(60, 13, 1);
        let centroids = init_centroids(&data, 9, InitMethod::Forgy, 2);
        let plan = AssignPlan::new(AssignKernel::Scalar, &centroids);
        for (i, &(j, dist)) in batch(&plan, &data, &centroids).iter().enumerate() {
            let (sj, sd) = argmin_centroid(data.row(i), &centroids);
            assert_eq!(j as usize, sj);
            assert_eq!(dist, sd, "sample {i}: keys must be bitwise equal");
        }
    }

    #[test]
    fn expansion_kernels_match_scalar_argmin() {
        for (n, k, d, seed) in [
            (100usize, 7usize, 16usize, 3u64),
            (37, 13, 5, 4),
            (64, 24, 64, 5),
            (200, 3, 1, 6),
            (9, 9, 33, 7),
        ] {
            let data = random_matrix(n, d, seed);
            let centroids = init_centroids(&data, k, InitMethod::Forgy, seed + 100);
            let scalar = batch(
                &AssignPlan::new(AssignKernel::Scalar, &centroids),
                &data,
                &centroids,
            );
            for kernel in [
                AssignKernel::Expanded,
                AssignKernel::Tiled,
                AssignKernel::Gemm,
            ] {
                let got = batch(&AssignPlan::new(kernel, &centroids), &data, &centroids);
                for i in 0..n {
                    assert_eq!(
                        got[i].0, scalar[i].0,
                        "{kernel} n={n} k={k} d={d} sample {i}"
                    );
                    // Keys agree up to reassociation of the expansion.
                    let rel = (got[i].1 - scalar[i].1).abs() / (1.0 + scalar[i].1);
                    assert!(rel < 1e-9, "{kernel} key drift {rel}");
                }
            }
        }
    }

    #[test]
    fn duplicate_centroids_tie_to_lowest_index_under_every_kernel() {
        let data = random_matrix(50, 6, 11);
        let base = init_centroids(&data, 5, InitMethod::Forgy, 12);
        // Duplicate every row so ties occur at every block position of the
        // tile grid (tiny tiles force duplicates into different blocks).
        let mut rows: Vec<&[f64]> = Vec::new();
        for j in 0..base.rows() {
            rows.push(base.row(j));
            rows.push(base.row(j));
        }
        let centroids = Matrix::from_rows(&rows);
        for kernel in AssignKernel::ALL {
            for ldm in [64usize, 512, LDM_BYTES_DEFAULT] {
                let plan = AssignPlan::with_ldm_budget(kernel, &centroids, ldm);
                for (i, &(j, _)) in batch(&plan, &data, &centroids).iter().enumerate() {
                    let (sj, _) = argmin_centroid(data.row(i), &centroids);
                    assert_eq!(j as usize, sj, "{kernel} ldm={ldm} sample {i}");
                    assert_eq!(j % 2, 0, "a duplicate's higher index won");
                }
            }
        }
    }

    #[test]
    fn dimension_slices_are_exact_for_every_kernel() {
        let data = random_matrix(40, 23, 21);
        let centroids = init_centroids(&data, 6, InitMethod::Forgy, 22);
        // Slice 23 dims over 5 "CPEs" like split_range does: 5,5,5,4,4.
        let slices = vec![0..5, 5..10, 10..15, 15..19, 19..23];
        for kernel in AssignKernel::ALL {
            let whole = AssignPlan::new(kernel, &centroids);
            let sliced = AssignPlan::with_options(
                kernel,
                &centroids,
                LDM_BYTES_DEFAULT,
                Some(slices.clone()),
            );
            let a = batch(&whole, &data, &centroids);
            let b = batch(&sliced, &data, &centroids);
            for i in 0..data.rows() {
                assert_eq!(a[i].0, b[i].0, "{kernel} sample {i}");
                let rel = (a[i].1 - b[i].1).abs() / (1.0 + a[i].1);
                assert!(rel < 1e-9, "{kernel} sliced key drift {rel}");
            }
        }
    }

    #[test]
    fn range_assignment_offsets_globally() {
        let data = random_matrix(20, 8, 31);
        let centroids = init_centroids(&data, 10, InitMethod::Forgy, 32);
        for kernel in AssignKernel::ALL {
            let plan = AssignPlan::new(kernel, &centroids);
            let mut out = Vec::new();
            plan.assign_batch_into(&data, 0..data.rows(), &centroids, 4..10, 100, &mut out);
            for (i, &(j, key)) in out.iter().enumerate() {
                assert!((100..106).contains(&(j as usize)), "sample {i}: index {j}");
                let (oj, okey) = plan.assign_one(data.row(i), &centroids, 4..10, 100);
                assert_eq!((j, key), (oj, okey), "{kernel} one-vs-batch sample {i}");
            }
        }
    }

    #[test]
    fn tiny_tiles_agree_with_huge_tiles() {
        // Forcing 1×1 .. 4×4 tiles exercises every edge-block path; the
        // result must be bitwise identical to one big tile.
        let data = random_matrix(33, 17, 41);
        let centroids = init_centroids(&data, 11, InitMethod::Forgy, 42);
        let big = batch(
            &AssignPlan::with_ldm_budget(AssignKernel::Tiled, &centroids, 1 << 24),
            &data,
            &centroids,
        );
        for ldm in [1usize, 100, 300, 700, 2_000] {
            let small = batch(
                &AssignPlan::with_ldm_budget(AssignKernel::Tiled, &centroids, ldm),
                &data,
                &centroids,
            );
            assert_eq!(small, big, "ldm={ldm}");
        }
    }

    #[test]
    fn gemm_is_bitwise_identical_to_tiled() {
        // The GEMM path shares the tiled kernel's canonical accumulation
        // order, so its labels *and keys* must match bit for bit — on
        // ragged shapes (edge panels and edge sample groups), under
        // Level-3 dimension slices, and on mid-panel centroid subranges
        // like serve's shards.
        for (n, k, d, seed) in [
            (130usize, 37usize, 40usize, 1u64),
            (37, 13, 5, 2),
            (64, 24, 64, 3),
            (200, 3, 1, 4),
            (9, 130, 33, 5),
        ] {
            let data = random_matrix(n, d, seed);
            let centroids = random_matrix(k, d, seed + 50);
            let tiled = batch(
                &AssignPlan::new(AssignKernel::Tiled, &centroids),
                &data,
                &centroids,
            );
            let gemm = batch(
                &AssignPlan::new(AssignKernel::Gemm, &centroids),
                &data,
                &centroids,
            );
            for i in 0..n {
                assert_eq!(gemm[i].0, tiled[i].0, "n={n} k={k} d={d} sample {i}");
                assert_eq!(
                    gemm[i].1.to_bits(),
                    tiled[i].1.to_bits(),
                    "n={n} k={k} d={d} sample {i}: key bits differ"
                );
            }
        }
        // Sliced + mid-panel subrange: crows cuts through packed panels.
        let data = random_matrix(41, 29, 6);
        let centroids = init_centroids(&data, 27, InitMethod::Forgy, 7);
        let slices = Some(vec![0..11, 11..12, 12..12, 12..29]);
        let tiled = AssignPlan::with_options(
            AssignKernel::Tiled,
            &centroids,
            LDM_BYTES_DEFAULT,
            slices.clone(),
        );
        let gemm =
            AssignPlan::with_options(AssignKernel::Gemm, &centroids, LDM_BYTES_DEFAULT, slices);
        for crows in [0..27usize, 3..22, 5..6, 8..16] {
            let mut a = Vec::new();
            let mut b = Vec::new();
            tiled.assign_batch_into(&data, 0..41, &centroids, crows.clone(), 9, &mut a);
            gemm.assign_batch_into(&data, 0..41, &centroids, crows.clone(), 9, &mut b);
            assert_eq!(
                a.iter().map(|&(j, s)| (j, s.to_bits())).collect::<Vec<_>>(),
                b.iter().map(|&(j, s)| (j, s.to_bits())).collect::<Vec<_>>(),
                "crows={crows:?}"
            );
        }
        // f32 pins the explicit-lane (AVX on x86-64) micro kernel against
        // tiled's scalar chains: unfused per-lane mul-then-add must keep
        // the keys bitwise equal too.
        let mut rng = ChaCha8Rng::seed_from_u64(97);
        let data32 = Matrix::from_vec(
            61,
            37,
            (0..61 * 37).map(|_| rng.gen_range(-3.0f32..3.0)).collect(),
        );
        let cents32 = Matrix::from_vec(
            30,
            37,
            (0..30 * 37).map(|_| rng.gen_range(-3.0f32..3.0)).collect(),
        );
        let mut a = Vec::new();
        let mut b = Vec::new();
        AssignPlan::new(AssignKernel::Tiled, &cents32).assign_batch_into(
            &data32,
            0..61,
            &cents32,
            0..30,
            0,
            &mut a,
        );
        AssignPlan::new(AssignKernel::Gemm, &cents32).assign_batch_into(
            &data32,
            0..61,
            &cents32,
            0..30,
            0,
            &mut b,
        );
        assert_eq!(
            a.iter().map(|&(j, s)| (j, s.to_bits())).collect::<Vec<_>>(),
            b.iter().map(|&(j, s)| (j, s.to_bits())).collect::<Vec<_>>(),
            "f32 gemm diverged from tiled"
        );
    }

    #[test]
    fn tiny_gemm_blocks_agree_with_huge_blocks() {
        // Forcing minimal 4×8 blocks exercises every edge path of the
        // packed kernel; results must be bitwise identical to one big
        // resident block — and to any cost-model override in between.
        let data = random_matrix(53, 17, 43);
        let centroids = init_centroids(&data, 21, InitMethod::Forgy, 44);
        let big = batch(
            &AssignPlan::with_ldm_budget(AssignKernel::Gemm, &centroids, 1 << 24),
            &data,
            &centroids,
        );
        for (mc, nc) in [(4usize, 8usize), (4, 16), (8, 8), (12, 24), (100, 8)] {
            let plan = AssignPlan::new(AssignKernel::Gemm, &centroids)
                .with_blocking(GemmBlocking::new(mc, nc));
            assert_eq!(
                plan.blocking(),
                Some(GemmBlocking::new(mc, nc)),
                "override lost"
            );
            assert_eq!(batch(&plan, &data, &centroids), big, "mc={mc} nc={nc}");
        }
    }

    #[test]
    fn gemm_blocking_respects_budget_and_micro_multiples() {
        for d in [1usize, 4, 16, 64, 100, 256, 1_000, 4_096] {
            for e in [4usize, 8] {
                for ldm in [1usize << 12, LDM_BYTES_DEFAULT, 1 << 20] {
                    let b = GemmBlocking::for_budget(ldm, d, e);
                    assert_eq!(b.mc % GEMM_MR, 0, "d={d} e={e}");
                    assert_eq!(b.nc % GEMM_NR, 0, "d={d} e={e}");
                    assert!(b.mc >= GEMM_MR && b.nc >= GEMM_NR);
                    if b.mc > GEMM_MR || b.nc > GEMM_NR {
                        assert!(
                            b.footprint_bytes(d, e) <= ldm + (GEMM_MR + GEMM_NR) * d * e,
                            "d={d} e={e} ldm={ldm}: {b:?} uses {} B",
                            b.footprint_bytes(d, e)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn planner_reuses_unchanged_rows_bitwise() {
        let data = random_matrix(60, 19, 91);
        let c1 = init_centroids(&data, 13, InitMethod::Forgy, 92);
        // Move rows 2 and 9 only; everything else keeps its bits.
        let mut moved = c1.as_slice().to_vec();
        for j in [2usize, 9] {
            for v in &mut moved[j * 19..(j + 1) * 19] {
                *v += 0.25;
            }
        }
        let c2 = Matrix::from_vec(13, 19, moved);
        for kernel in AssignKernel::ALL {
            let mut planner = AssignPlanner::new(kernel, LDM_BYTES_DEFAULT);
            let p1 = planner.plan(&c1);
            assert_eq!(batch(&p1, &data, &c1), {
                let fresh = AssignPlan::new(kernel, &c1);
                batch(&fresh, &data, &c1)
            });
            // Second plan: snapshot diff finds exactly the two moved rows,
            // and the cached plan is bitwise-identical to a fresh build.
            let p2 = planner.plan(&c2);
            let fresh = AssignPlan::new(kernel, &c2);
            let got = batch(&p2, &data, &c2);
            let want = batch(&fresh, &data, &c2);
            assert_eq!(
                got.iter()
                    .map(|&(j, s)| (j, s.to_bits()))
                    .collect::<Vec<_>>(),
                want.iter()
                    .map(|&(j, s)| (j, s.to_bits()))
                    .collect::<Vec<_>>(),
                "{kernel}: cached plan diverged from fresh build"
            );
            let stats = planner.stats();
            assert_eq!(stats.plans, 2, "{kernel}");
            if kernel == AssignKernel::Scalar {
                // Nothing derived to cache.
                assert_eq!(stats.rows_refreshed, 0);
            } else {
                assert_eq!(stats.rows_refreshed, 13 + 2, "{kernel}");
                assert_eq!(stats.rows_reused, 11, "{kernel}");
            }
            if kernel == AssignKernel::Gemm {
                // 13 rows → 2 panels; rows 2 and 9 land in different
                // panels, so both were rebuilt on the refresh.
                assert_eq!(stats.panels_rebuilt, 2 + 2);
                assert_eq!(stats.panels_reused, 0);
            }
            // The explicit changed-row hint takes the same path.
            let mut hinted = AssignPlanner::new(kernel, LDM_BYTES_DEFAULT);
            hinted.plan(&c1);
            let mut changed = vec![false; 13];
            changed[2] = true;
            changed[9] = true;
            let p3 = hinted.plan_with_changed(&c2, &changed);
            let got3 = batch(&p3, &data, &c2);
            assert_eq!(
                got3.iter()
                    .map(|&(j, s)| (j, s.to_bits()))
                    .collect::<Vec<_>>(),
                want.iter()
                    .map(|&(j, s)| (j, s.to_bits()))
                    .collect::<Vec<_>>(),
                "{kernel}: hinted plan diverged"
            );
        }
    }

    #[test]
    fn planner_panel_reuse_skips_untouched_panels() {
        // 40 rows → 5 panels of 8. Moving one row must rebuild exactly one
        // panel and leave the other four shared.
        let data = random_matrix(30, 12, 95);
        let c1 = random_matrix(40, 12, 96);
        let mut moved = c1.as_slice().to_vec();
        for v in &mut moved[17 * 12..18 * 12] {
            *v -= 1.5;
        }
        let c2 = Matrix::from_vec(40, 12, moved);
        let mut planner = AssignPlanner::new(AssignKernel::Gemm, LDM_BYTES_DEFAULT);
        planner.plan(&c1);
        let p2 = planner.plan(&c2);
        let stats = planner.stats();
        assert_eq!(stats.panels_rebuilt, 5 + 1);
        assert_eq!(stats.panels_reused, 4);
        let fresh = AssignPlan::new(AssignKernel::Gemm, &c2);
        assert_eq!(batch(&p2, &data, &c2), batch(&fresh, &data, &c2));
    }

    #[test]
    fn f32_kernels_agree_on_separated_data() {
        // f32 near-tie tolerance story: on well-separated data all kernels
        // agree exactly; near-exact ties may legitimately differ between
        // Scalar and the expansion kernels (documented, not asserted).
        let mut rng = ChaCha8Rng::seed_from_u64(51);
        let centroids = Matrix::from_vec(
            4,
            8,
            (0..32)
                .map(|i| (i / 8) as f32 * 50.0 + (i % 8) as f32)
                .collect(),
        );
        let data = Matrix::from_vec(
            24,
            8,
            (0..24 * 8)
                .map(|i| (i / 8 % 4) as f32 * 50.0 + rng.gen_range(-1.0f32..1.0))
                .collect(),
        );
        let reference: Vec<u32> = (0..24)
            .map(|i| argmin_centroid(data.row(i), &centroids).0 as u32)
            .collect();
        for kernel in AssignKernel::ALL {
            let plan = AssignPlan::new(kernel, &centroids);
            let mut out = Vec::new();
            plan.assign_batch_into(&data, 0..24, &centroids, 0..4, 0, &mut out);
            let got: Vec<u32> = out.iter().map(|&(j, _)| j).collect();
            assert_eq!(got, reference, "{kernel}");
        }
    }

    #[test]
    fn fused_accumulate_is_bitwise_identical_to_a_separate_sweep() {
        let data = random_matrix(73, 17, 71);
        let centroids = init_centroids(&data, 9, InitMethod::Forgy, 72);
        let (k, d) = (centroids.rows(), centroids.cols());
        let slices = vec![0..5, 5..11, 11..17];
        for kernel in AssignKernel::ALL {
            for (ldm, sl) in [
                (LDM_BYTES_DEFAULT, None),
                (300, None),
                (LDM_BYTES_DEFAULT, Some(slices.clone())),
            ] {
                let plan = AssignPlan::with_options(kernel, &centroids, ldm, sl);
                let mut plain = Vec::new();
                plan.assign_batch_into(&data, 0..73, &centroids, 0..k, 0, &mut plain);
                // The reference two-pass sweep: ascending-sample whole-row
                // adds into zeroed accumulators.
                let mut want_sums = vec![0.0f64; k * d];
                let mut want_counts = vec![0u64; k];
                for (i, &(j, _)) in plain.iter().enumerate() {
                    let j = j as usize;
                    want_counts[j] += 1;
                    for (a, &x) in want_sums[j * d..(j + 1) * d].iter_mut().zip(data.row(i)) {
                        *a += x;
                    }
                }
                let mut fused = Vec::new();
                let mut sums = vec![0.0f64; k * d];
                let mut counts = vec![0u64; k];
                plan.assign_accumulate_into(
                    &data,
                    0..73,
                    &centroids,
                    0..k,
                    0,
                    &mut fused,
                    &mut sums,
                    &mut counts,
                );
                assert_eq!(fused, plain, "{kernel} ldm={ldm}: labels/keys differ");
                assert_eq!(counts, want_counts, "{kernel} ldm={ldm}");
                assert!(
                    sums.iter()
                        .zip(&want_sums)
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "{kernel} ldm={ldm}: fused sums not bitwise equal"
                );
            }
        }
    }

    #[test]
    fn fused_accumulate_respects_centroid_subranges() {
        let data = random_matrix(20, 8, 81);
        let centroids = init_centroids(&data, 10, InitMethod::Forgy, 82);
        let d = centroids.cols();
        let crows = 4..10;
        for kernel in AssignKernel::ALL {
            let plan = AssignPlan::new(kernel, &centroids);
            let mut out = Vec::new();
            let mut sums = vec![0.0f64; crows.len() * d];
            let mut counts = vec![0u64; crows.len()];
            plan.assign_accumulate_into(
                &data,
                0..20,
                &centroids,
                crows.clone(),
                100,
                &mut out,
                &mut sums,
                &mut counts,
            );
            assert_eq!(counts.iter().sum::<u64>(), 20, "{kernel}");
            for (i, &(j, _)) in out.iter().enumerate() {
                let local = j as usize - 100;
                assert!(local < crows.len(), "sample {i}");
            }
        }
    }

    #[test]
    fn stale_plan_panics() {
        let c1 = random_matrix(4, 3, 61);
        let c2 = random_matrix(5, 3, 62);
        let plan = AssignPlan::new(AssignKernel::Expanded, &c1);
        let data = random_matrix(2, 3, 63);
        let result = std::panic::catch_unwind(|| {
            let mut out = Vec::new();
            plan.assign_batch_into(&data, 0..2, &c2, 0..5, 0, &mut out);
        });
        assert!(result.is_err(), "stale plan must fail loudly");
    }

    #[test]
    #[allow(clippy::single_range_in_vec_init)] // a one-slice covering is a case under test
    fn linear_and_unrolled_sliced_dots_match_reference() {
        let a: Vec<f64> = (0..97).map(|i| (i as f64 * 0.31).sin()).collect();
        let b: Vec<f64> = (0..97).map(|i| (i as f64 * 0.73).cos()).collect();
        let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        for slices in [vec![0..97], vec![0..13, 13..64, 64..97], vec![0..0, 0..97]] {
            let lin = dot_sliced_linear(&a, &b, &slices);
            let unr = dot_sliced_unrolled(&a, &b, &slices);
            assert!((lin - naive).abs() < 1e-12 * (1.0 + naive.abs()));
            assert!((unr - naive).abs() < 1e-12 * (1.0 + naive.abs()));
        }
    }
}
