//! Triangle-inequality bound maintenance fused with the batch assign
//! kernels: the distributed generalisation of [`crate::yinyang`]'s serial
//! pruning.
//!
//! A [`BoundState`] tracks, per sample, an upper bound on the distance to
//! its cached winning centroid and Yinyang-style lower bounds on the
//! distance to every *group* of centroids (`t ≈ k/10` contiguous index
//! ranges; `t = 1` is Hamerly's single-bound algorithm). Bounds are
//! seeded from real kernel scans, then loosened each iteration by the
//! per-centroid drift of the merged update. A sample whose upper bound
//! sits strictly below every group lower bound cannot have changed its
//! argmin, so its cached `(label, key)` pair is emitted without touching
//! the centroids; the surviving rows are gather-compacted into a dense
//! panel and pushed through the *same* [`AssignPlan`] batch kernels, so
//! pruning multiplies with the tiled/GEMM speedups instead of replacing
//! them.
//!
//! # Bitwise discipline
//!
//! The filter is *winner-preserving*: it only ever suppresses scans whose
//! argmin provably equals the cached label, so labels, keys, centroids,
//! objective and iteration count are bitwise-identical to the unbounded
//! run of the same kernel — the induction argument of the delta update
//! path, applied to the assign phase. Two design points make the proof go
//! through at every level:
//!
//! * **Contiguous groups.** Bound groups are contiguous centroid index
//!   ranges, so a per-group scan is an ordinary `crows` sub-range of the
//!   same plan (bit-identical keys to the full scan), the cross-group
//!   winner is the lexicographic min over `(key, index)` — exactly the
//!   full scan's ascending-index tie-break — and a group intersected with
//!   a Level-2/3 centroid shard is again a plain range.
//! * **Merged-quantity state.** Every bound update is computed from
//!   globally-merged values (min-loc winners, allreduced drifts and
//!   runner-up minima), so the centroid-sharing members of a group make
//!   identical IEEE-754 filter decisions without any extra agreement
//!   protocol.
//!
//! Floating-point safety margins (`slack`) widen every bound by a
//! kernel-rounding allowance scaled to the sample norm, covering the
//! cancellation error of the expanded `‖x‖²+‖c‖²−2·x·c` forms; exact ties
//! produce `ub ≥ lb` and therefore always rescan, which is how the
//! lowest-index tie-break survives filtering.

use crate::assign::AssignPlan;
use crate::matrix::Matrix;
use crate::scalar::Scalar;
use std::fmt;
use std::ops::Range;
use std::str::FromStr;

/// Moved-fraction threshold below which a dormant bound state engages:
/// while most labels still churn, bounds cannot filter anything, so the
/// state stays dormant (plain scans, zero bookkeeping) until the
/// convergence tail begins.
pub const ENGAGE_MOVED_FRACTION: f64 = 0.25;

/// Survivor fraction above which the next iteration reseeds: lower bounds
/// only ever loosen between seeds, so once most rows rescan anyway, one
/// seed scan (≈ the cost of an unbounded iteration) re-tightens them.
pub const RESEED_SURVIVOR_FRACTION: f64 = 0.5;

/// Bounded-assign strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundsMode {
    /// Unbounded: every sample scans every centroid each iteration.
    None,
    /// Hamerly: one global lower bound per sample (`t = 1`). Cheapest
    /// bookkeeping; the right choice for small `k`.
    Hamerly,
    /// Yinyang: `t ≈ k/10` group lower bounds per sample (Ding et al.,
    /// ICML 2015). The default for paper-sized `k`.
    Yinyang,
    /// Consult the perf model (or a local heuristic) per run.
    Auto,
}

impl BoundsMode {
    pub const ALL: [BoundsMode; 4] = [
        BoundsMode::None,
        BoundsMode::Hamerly,
        BoundsMode::Yinyang,
        BoundsMode::Auto,
    ];

    pub fn name(self) -> &'static str {
        match self {
            BoundsMode::None => "none",
            BoundsMode::Hamerly => "hamerly",
            BoundsMode::Yinyang => "yinyang",
            BoundsMode::Auto => "auto",
        }
    }

    /// Stable numeric code for metrics gauges.
    pub fn code(self) -> u8 {
        match self {
            BoundsMode::None => 0,
            BoundsMode::Hamerly => 1,
            BoundsMode::Yinyang => 2,
            BoundsMode::Auto => 3,
        }
    }

    pub fn parse(s: &str) -> Option<BoundsMode> {
        BoundsMode::ALL.into_iter().find(|m| m.name() == s)
    }

    /// Resolve `Auto` without a perf model: Hamerly's single bound for
    /// small `k` (group bookkeeping would cost more than it saves),
    /// Yinyang groups otherwise. `None` stays `None`.
    pub fn resolve_local(self, k: usize) -> BoundsMode {
        match self {
            BoundsMode::Auto => {
                if k <= 32 {
                    BoundsMode::Hamerly
                } else {
                    BoundsMode::Yinyang
                }
            }
            other => other,
        }
    }

    /// Number of lower-bound groups for this mode at a given `k`.
    pub fn group_count(self, k: usize) -> usize {
        match self {
            BoundsMode::None => 0,
            BoundsMode::Hamerly => 1.min(k),
            BoundsMode::Yinyang | BoundsMode::Auto => (k / 10).clamp(1, k.max(1)),
        }
    }
}

impl fmt::Display for BoundsMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for BoundsMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        BoundsMode::parse(s).ok_or_else(|| {
            format!("unknown bounds mode '{s}' (expected none, hamerly, yinyang or auto)")
        })
    }
}

/// Pruning effectiveness counters, summed across ranks by the executors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BoundsStats {
    /// Centroid distance evaluations actually performed (batch kernel
    /// pairs plus scalar runner-up probes).
    pub distance_evals: u64,
    /// Evaluations an unbounded Lloyd assign would have performed over
    /// the same iterations (`n·k` per iteration).
    pub lloyd_equivalent: u64,
    /// Samples whose every group was pruned (cached pair emitted without
    /// any scan).
    pub global_filter_hits: u64,
    /// Per-group prunes observed on samples that still rescanned — the
    /// headroom a group-granular scan would additionally exploit.
    pub group_filter_hits: u64,
    /// Full seeding scans (initial, reseed and post-fault).
    pub seed_scans: u64,
    /// Conservative resets (fault-degraded iterations).
    pub resets: u64,
}

impl BoundsStats {
    /// Fraction of Lloyd-equivalent distance work avoided.
    pub fn savings(&self) -> f64 {
        if self.lloyd_equivalent == 0 {
            0.0
        } else {
            1.0 - self.distance_evals as f64 / self.lloyd_equivalent as f64
        }
    }

    pub fn merge(&mut self, other: &BoundsStats) {
        self.distance_evals += other.distance_evals;
        self.lloyd_equivalent += other.lloyd_equivalent;
        self.global_filter_hits += other.global_filter_hits;
        self.group_filter_hits += other.group_filter_hits;
        self.seed_scans += other.seed_scans;
        self.resets += other.resets;
    }
}

/// What the bound state wants the next assign pass to be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundsIterKind {
    /// Not engaged: run the plain unbounded scan.
    Dormant,
    /// Engaged but unseeded (first engagement, reseed, or post-fault
    /// reset): run per-group scans that double as the full assign.
    Seed,
    /// Seeded: filter, then rescan only the survivors.
    Filter,
}

/// Reusable buffers for the serial bounded-assign driver.
#[derive(Debug, Default)]
pub struct BoundsScratch<S: Scalar> {
    group_out: Vec<Vec<(u32, S)>>,
    survivors: Vec<u32>,
    panel: Vec<S>,
    panel_out: Vec<(u32, S)>,
}

/// Per-sample bound bookkeeping for one rank's stripe of the dataset.
///
/// State indices are stripe-local: index `i` is sample `rows.start + i`
/// of whatever row range the owning executor passes to the drivers.
#[derive(Debug)]
pub struct BoundState<S: Scalar> {
    mode: BoundsMode,
    n: usize,
    k: usize,
    d: usize,
    t: usize,
    groups: Vec<Range<usize>>,
    group_of: Vec<u32>,
    /// Upper bound on the distance to the cached winner (f64, sqrt
    /// space), pre-widened by the kernel-rounding slack.
    ub: Vec<f64>,
    /// `n·t` group lower bounds, row-major per sample.
    lb: Vec<f64>,
    /// Cached winning `(global label, comparison key)` per sample.
    cached: Vec<(u32, S)>,
    /// Per-sample `‖x‖` (f64), the scale of the kernel rounding slack.
    xnorm: Vec<f64>,
    xnorm_ready: bool,
    /// Per-row bound validity (per-row seeding for the mini-batch path;
    /// the dense executors seed all rows at once).
    row_ok: Vec<bool>,
    active: bool,
    seeded: bool,
    pending_reseed: bool,
    slack: f64,
    pub stats: BoundsStats,
}

/// Relative drift inflation covering the f64 rounding of the shift
/// computation itself.
const DRIFT_INFLATE: f64 = 1.0 + 1e-12;

fn slack_for<S: Scalar>() -> f64 {
    // Covers the cancellation error of the expanded kernels'
    // `‖x‖²+‖c‖²−2·x·c` bracketing relative to the scalar distance,
    // scaled by `2‖x‖ + dist` at use sites. Exact ties always rescan
    // regardless (ub ≥ lb there), so generosity costs only a sliver of
    // filter rate, never correctness.
    if S::BYTES == 4 {
        3e-4
    } else {
        1e-9
    }
}

/// Distance from a batch-assign pair value: [`AssignPlan::assign_batch_into`]
/// reports squared distances (`‖x‖²` already added back).
pub fn dist_from_batch<S: Scalar>(v: S) -> f64 {
    v.to_f64().max(0.0).sqrt()
}

/// Distance from a raw [`AssignPlan::score_pair`] key (`‖x‖²` still
/// missing for the expanded kernels).
pub fn dist_from_score_key<S: Scalar>(plan: &AssignPlan<S>, sample: &[S], key: S) -> f64 {
    plan.key_to_dist(sample, key).to_f64().max(0.0).sqrt()
}

/// Per-centroid Euclidean drift between two same-shape centroid sets
/// (f64, exact zero for bitwise-unchanged rows).
pub fn centroid_drifts<S: Scalar>(old: &Matrix<S>, new: &Matrix<S>, out: &mut Vec<f64>) {
    assert_eq!(old.rows(), new.rows());
    assert_eq!(old.cols(), new.cols());
    out.clear();
    out.resize(old.rows(), 0.0);
    for (j, drift) in out.iter_mut().enumerate() {
        let (o, n) = (old.row(j), new.row(j));
        let mut acc = 0.0f64;
        for (a, b) in o.iter().zip(n) {
            let df = b.to_f64() - a.to_f64();
            acc += df * df;
        }
        *drift = acc.sqrt();
    }
}

impl<S: Scalar> BoundState<S> {
    /// A dormant bound state for `n` stripe-local samples and `k`
    /// centroids of dimension `d`. `mode` must be `Hamerly` or `Yinyang`
    /// (resolve `Auto` first; `None` means "don't construct one").
    pub fn new(mode: BoundsMode, n: usize, k: usize, d: usize) -> BoundState<S> {
        let mode = mode.resolve_local(k);
        assert!(
            matches!(mode, BoundsMode::Hamerly | BoundsMode::Yinyang),
            "BoundState requires a concrete bounded mode, got {mode}"
        );
        let t = mode.group_count(k).max(1).min(k.max(1));
        let groups: Vec<Range<usize>> = (0..t).map(|g| g * k / t..(g + 1) * k / t).collect();
        let mut group_of = vec![0u32; k];
        for (g, r) in groups.iter().enumerate() {
            for j in r.clone() {
                group_of[j] = g as u32;
            }
        }
        BoundState {
            mode,
            n,
            k,
            d,
            t,
            groups,
            group_of,
            ub: vec![0.0; n],
            lb: vec![f64::INFINITY; n * t],
            cached: vec![(0, S::ZERO); n],
            xnorm: vec![0.0; n],
            xnorm_ready: false,
            row_ok: vec![false; n],
            active: false,
            seeded: false,
            pending_reseed: false,
            slack: slack_for::<S>(),
            stats: BoundsStats::default(),
        }
    }

    pub fn mode(&self) -> BoundsMode {
        self.mode
    }

    pub fn group_ranges(&self) -> &[Range<usize>] {
        &self.groups
    }

    pub fn group_of(&self, j: usize) -> usize {
        self.group_of[j] as usize
    }

    pub fn groups_len(&self) -> usize {
        self.t
    }

    pub fn cached(&self, i: usize) -> (u32, S) {
        self.cached[i]
    }

    /// Whether bounds are currently valid (drift loosening applies).
    pub fn seeded(&self) -> bool {
        self.seeded
    }

    /// What the next assign pass should be, decided deterministically
    /// from state that is identical on every member of a centroid group.
    pub fn iteration_kind(&self) -> BoundsIterKind {
        if !self.active {
            BoundsIterKind::Dormant
        } else if !self.seeded || self.pending_reseed {
            BoundsIterKind::Seed
        } else {
            BoundsIterKind::Filter
        }
    }

    /// Engage once the convergence tail begins. Call at the end of every
    /// iteration with that iteration's moved fraction.
    pub fn note_moved_fraction(&mut self, moved: f64) {
        if !self.active && moved <= ENGAGE_MOVED_FRACTION {
            self.active = true;
        }
    }

    /// Engage unconditionally (the mini-batch path, which has no global
    /// moved-fraction signal and seeds rows lazily instead).
    pub fn engage(&mut self) {
        self.active = true;
    }

    /// Conservative invalidation: a fault-degraded iteration ran on a
    /// degraded communicator, so drop back to dormant and reseed when
    /// the tail re-engages.
    pub fn reset(&mut self) {
        self.active = false;
        self.seeded = false;
        self.pending_reseed = false;
        self.row_ok.fill(false);
        self.stats.resets += 1;
    }

    /// Loosen every bound by the per-centroid drift of the last merged
    /// update (`drifts[j]` = Euclidean shift of centroid `j`, computed
    /// from globally-merged centroids). No-op until seeded.
    pub fn loosen(&mut self, drifts: &[f64]) {
        if !self.seeded {
            return;
        }
        assert_eq!(drifts.len(), self.k);
        let mut gd = vec![0.0f64; self.t];
        for (j, &dj) in drifts.iter().enumerate() {
            let g = self.group_of[j] as usize;
            if dj > gd[g] {
                gd[g] = dj;
            }
        }
        for (i, ok) in self.row_ok.iter().enumerate() {
            if !ok {
                continue;
            }
            let b = self.cached[i].0 as usize;
            let db = drifts[b];
            if db > 0.0 {
                self.ub[i] += db * DRIFT_INFLATE;
            }
            let row = &mut self.lb[i * self.t..(i + 1) * self.t];
            for (g, l) in row.iter_mut().enumerate() {
                if gd[g] > 0.0 {
                    *l -= gd[g] * DRIFT_INFLATE;
                }
            }
        }
    }

    fn pad(&self, i: usize, dist: f64) -> f64 {
        self.slack * (2.0 * self.xnorm[i] + dist)
    }

    /// Fill `‖x‖` for stripe rows `rows` of `data` (state index
    /// `row − rows.start`). Idempotent; called by the seed paths.
    pub fn ensure_xnorms(&mut self, data: &Matrix<S>, rows: Range<usize>) {
        if self.xnorm_ready {
            return;
        }
        assert_eq!(rows.len(), self.n);
        for (i, xn) in self.xnorm.iter_mut().enumerate() {
            let mut acc = 0.0f64;
            for v in data.row(rows.start + i) {
                let f = v.to_f64();
                acc += f * f;
            }
            *xn = acc.sqrt();
        }
        self.xnorm_ready = true;
    }

    /// Seed one row from merged per-group winner distances.
    /// `group_dists[g]` is the (merged) min distance within group `g`
    /// (`INFINITY` where a shard saw no member), `runner_up` the merged
    /// min within the winner's group excluding the winner itself.
    pub fn seed_row(&mut self, i: usize, pair: (u32, S), group_dists: &[f64], runner_up: f64) {
        debug_assert_eq!(group_dists.len(), self.t);
        let gb = self.group_of[pair.0 as usize] as usize;
        let dist = group_dists[gb];
        self.ub[i] = dist + self.pad(i, dist);
        let row = &mut self.lb[i * self.t..(i + 1) * self.t];
        for (g, l) in row.iter_mut().enumerate() {
            let dg = group_dists[g];
            *l = if dg.is_finite() {
                dg - self.slack * (2.0 * self.xnorm[i] + dg)
            } else {
                dg
            };
        }
        row[gb] = if runner_up.is_finite() {
            runner_up - self.slack * (2.0 * self.xnorm[i] + runner_up)
        } else {
            runner_up
        };
        self.cached[i] = pair;
        self.row_ok[i] = true;
    }

    /// Mark a completed seeding pass over every stripe row.
    pub fn mark_seeded(&mut self) {
        self.active = true;
        self.seeded = true;
        self.pending_reseed = false;
        self.stats.seed_scans += 1;
    }

    /// Filter decision for one row: `Some(cached pair)` if every group is
    /// pruned (emit without scanning), `None` if the row must rescan.
    pub fn filter_row(&mut self, i: usize) -> Option<(u32, S)> {
        if !self.row_ok[i] {
            return None;
        }
        let ub = self.ub[i];
        let row = &self.lb[i * self.t..(i + 1) * self.t];
        let mut glb = f64::INFINITY;
        for &l in row {
            if l < glb {
                glb = l;
            }
        }
        if ub < glb {
            self.stats.global_filter_hits += 1;
            Some(self.cached[i])
        } else {
            // Count the groups a group-granular scan could still skip.
            self.stats.group_filter_hits += row.iter().filter(|&&l| ub < l).count() as u64;
            None
        }
    }

    /// Absorb a survivor's merged rescan result.
    pub fn absorb_row(&mut self, i: usize, pair: (u32, S), dist: f64) {
        let prev = self.cached[i].0;
        self.ub[i] = dist + self.pad(i, dist);
        if pair.0 != prev && self.row_ok[i] {
            // The new winner's distance lower-bounds the old group's new
            // minimum (the old winner is still in there).
            let g_old = self.group_of[prev as usize] as usize;
            let l = dist - self.pad(i, dist);
            let slot = &mut self.lb[i * self.t + g_old];
            if l < *slot {
                *slot = l;
            }
        }
        self.cached[i] = pair;
    }

    /// Close a filtered pass: decide whether lower bounds have gone stale
    /// enough that the next iteration should reseed.
    pub fn finish_filter(&mut self, survivors: usize) {
        self.pending_reseed =
            (survivors as f64) > RESEED_SURVIVOR_FRACTION * (self.n.max(1) as f64);
    }

    /// Serial bounded assign over a fully-owned centroid set: drop-in for
    /// `plan.assign_batch_into(data, rows, centroids, 0..k, 0, out)`.
    /// Handles all three [`BoundsIterKind`]s; `out` receives one
    /// `(label, key)` pair per row, bitwise-identical to the unbounded
    /// call. Returns the kind that ran.
    pub fn assign_serial(
        &mut self,
        plan: &AssignPlan<S>,
        data: &Matrix<S>,
        rows: Range<usize>,
        centroids: &Matrix<S>,
        out: &mut Vec<(u32, S)>,
        scratch: &mut BoundsScratch<S>,
    ) -> BoundsIterKind {
        assert_eq!(rows.len(), self.n);
        assert_eq!(centroids.rows(), self.k);
        let kind = self.iteration_kind();
        let nk = (self.n as u64) * (self.k as u64);
        self.stats.lloyd_equivalent += nk;
        match kind {
            BoundsIterKind::Dormant => {
                plan.assign_batch_into(data, rows, centroids, 0..self.k, 0, out);
                self.stats.distance_evals += nk;
            }
            BoundsIterKind::Seed => {
                self.seed_scan(plan, data, rows, centroids, out, scratch);
            }
            BoundsIterKind::Filter => {
                self.filter_scan(plan, data, rows, centroids, out, scratch);
            }
        }
        kind
    }

    fn seed_scan(
        &mut self,
        plan: &AssignPlan<S>,
        data: &Matrix<S>,
        rows: Range<usize>,
        centroids: &Matrix<S>,
        out: &mut Vec<(u32, S)>,
        scratch: &mut BoundsScratch<S>,
    ) {
        self.ensure_xnorms(data, rows.clone());
        scratch.group_out.resize(self.t, Vec::new());
        for (g, range) in self.groups.iter().enumerate() {
            let go = &mut scratch.group_out[g];
            go.clear();
            if range.is_empty() {
                continue;
            }
            plan.assign_batch_into(
                data,
                rows.clone(),
                centroids,
                range.clone(),
                range.start,
                go,
            );
        }
        self.stats.distance_evals += (self.n as u64) * (self.k as u64);
        let mut group_dists = vec![f64::INFINITY; self.t];
        for i in 0..self.n {
            // Cross-group lexmin over (key, global index): groups are
            // ascending index ranges, so strict `<` on the key keeps the
            // earliest (lowest-index) group on exact cross-group ties —
            // the full scan's tie-break.
            let mut best: Option<(u32, S)> = None;
            for go in scratch.group_out.iter() {
                if go.is_empty() {
                    continue;
                }
                let cand = go[i];
                best = match best {
                    None => Some(cand),
                    Some(b) if cand.1 < b.1 => Some(cand),
                    Some(b) => Some(b),
                };
            }
            let pair = best.expect("at least one non-empty group");
            let sample = data.row(rows.start + i);
            for (g, go) in scratch.group_out.iter().enumerate() {
                group_dists[g] = if go.is_empty() {
                    f64::INFINITY
                } else {
                    dist_from_batch(go[i].1)
                };
            }
            let gb = self.group_of[pair.0 as usize] as usize;
            let mut ru_key: Option<S> = None;
            for j in self.groups[gb].clone() {
                if j as u32 == pair.0 {
                    continue;
                }
                let key = plan.score_pair(sample, centroids, j);
                ru_key = match ru_key {
                    None => Some(key),
                    Some(b) if key < b => Some(key),
                    Some(b) => Some(b),
                };
            }
            self.stats.distance_evals += (self.groups[gb].len() as u64).saturating_sub(1);
            let runner_up = match ru_key {
                Some(key) => dist_from_score_key(plan, sample, key),
                None => f64::INFINITY,
            };
            self.seed_row(i, pair, &group_dists, runner_up);
            out.push(pair);
        }
        self.mark_seeded();
    }

    fn filter_scan(
        &mut self,
        plan: &AssignPlan<S>,
        data: &Matrix<S>,
        rows: Range<usize>,
        centroids: &Matrix<S>,
        out: &mut Vec<(u32, S)>,
        scratch: &mut BoundsScratch<S>,
    ) {
        scratch.survivors.clear();
        scratch.panel.clear();
        let base = out.len();
        for i in 0..self.n {
            match self.filter_row(i) {
                Some(pair) => out.push(pair),
                None => {
                    scratch.survivors.push(i as u32);
                    scratch.panel.extend_from_slice(data.row(rows.start + i));
                    out.push((u32::MAX, S::ZERO));
                }
            }
        }
        let m = scratch.survivors.len();
        if m > 0 {
            let panel = Matrix::from_vec(m, self.d, std::mem::take(&mut scratch.panel));
            scratch.panel_out.clear();
            plan.assign_batch_into(
                &panel,
                0..m,
                centroids,
                0..self.k,
                0,
                &mut scratch.panel_out,
            );
            for (s, &iu) in scratch.survivors.iter().enumerate() {
                let i = iu as usize;
                let pair = scratch.panel_out[s];
                let dist = dist_from_batch(pair.1);
                self.absorb_row(i, pair, dist);
                out[base + i] = pair;
            }
            scratch.panel = panel.into_vec();
            self.stats.distance_evals += (m as u64) * (self.k as u64);
        }
        self.finish_filter(m);
    }

    /// Bounded assign for a gathered row panel whose rows map to
    /// arbitrary state indices (the mini-batch path): rows with valid
    /// bounds are filtered, everything else — first appearances and
    /// filter survivors — gets full per-group seeding, so every scanned
    /// row leaves with tight bounds. `out[r]` receives the pair for
    /// panel row `r`.
    pub fn assign_mapped(
        &mut self,
        plan: &AssignPlan<S>,
        panel: &Matrix<S>,
        map: &[usize],
        centroids: &Matrix<S>,
        out: &mut Vec<(u32, S)>,
        scratch: &mut BoundsScratch<S>,
    ) {
        let b = map.len();
        assert_eq!(panel.rows(), b);
        out.clear();
        self.stats.lloyd_equivalent += (b as u64) * (self.k as u64);
        scratch.survivors.clear();
        scratch.panel.clear();
        for (r, &i) in map.iter().enumerate() {
            match self.filter_row(i) {
                Some(pair) => out.push(pair),
                None => {
                    scratch.survivors.push(r as u32);
                    scratch.panel.extend_from_slice(panel.row(r));
                    out.push((u32::MAX, S::ZERO));
                }
            }
        }
        let m = scratch.survivors.len();
        if m == 0 {
            return;
        }
        let sub = Matrix::from_vec(m, self.d, std::mem::take(&mut scratch.panel));
        scratch.group_out.resize(self.t, Vec::new());
        for (g, range) in self.groups.iter().enumerate() {
            let go = &mut scratch.group_out[g];
            go.clear();
            if range.is_empty() {
                continue;
            }
            plan.assign_batch_into(&sub, 0..m, centroids, range.clone(), range.start, go);
        }
        self.stats.distance_evals += (m as u64) * (self.k as u64);
        let mut group_dists = vec![f64::INFINITY; self.t];
        for s in 0..m {
            let i = map[scratch.survivors[s] as usize];
            let mut best: Option<(u32, S)> = None;
            for go in scratch.group_out.iter() {
                if go.is_empty() {
                    continue;
                }
                let cand = go[s];
                best = match best {
                    None => Some(cand),
                    Some(bp) if cand.1 < bp.1 => Some(cand),
                    Some(bp) => Some(bp),
                };
            }
            let pair = best.expect("at least one non-empty group");
            let sample = sub.row(s);
            // Mini-batch rows recompute ‖x‖ on the fly: the stripe-wide
            // xnorm precompute never ran for lazily-seeded rows.
            let mut acc = 0.0f64;
            for v in sample {
                let f = v.to_f64();
                acc += f * f;
            }
            self.xnorm[i] = acc.sqrt();
            for (g, go) in scratch.group_out.iter().enumerate() {
                group_dists[g] = if go.is_empty() {
                    f64::INFINITY
                } else {
                    dist_from_batch(go[s].1)
                };
            }
            let gb = self.group_of[pair.0 as usize] as usize;
            let mut ru_key: Option<S> = None;
            for j in self.groups[gb].clone() {
                if j as u32 == pair.0 {
                    continue;
                }
                let key = plan.score_pair(sample, centroids, j);
                ru_key = match ru_key {
                    None => Some(key),
                    Some(bk) if key < bk => Some(key),
                    Some(bk) => Some(bk),
                };
            }
            self.stats.distance_evals += (self.groups[gb].len() as u64).saturating_sub(1);
            let runner_up = match ru_key {
                Some(key) => dist_from_score_key(plan, sample, key),
                None => f64::INFINITY,
            };
            self.seed_row(i, pair, &group_dists, runner_up);
            out[scratch.survivors[s] as usize] = pair;
        }
        self.seeded = true;
        scratch.panel = sub.into_vec();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::AssignKernel;
    use crate::init::{init_centroids, InitMethod};

    fn toy(n: usize, d: usize, seed: u64) -> Matrix<f64> {
        let mut v = Vec::with_capacity(n * d);
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        for _ in 0..n * d {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            v.push(((s >> 33) as f64) / (1u64 << 31) as f64 - 1.0);
        }
        Matrix::from_vec(n, d, v)
    }

    #[test]
    fn modes_parse_and_roundtrip() {
        for m in BoundsMode::ALL {
            assert_eq!(BoundsMode::parse(m.name()), Some(m));
            assert_eq!(m.name().parse::<BoundsMode>().unwrap(), m);
        }
        assert!(BoundsMode::parse("elkan").is_none());
        assert_eq!(BoundsMode::Auto.resolve_local(8), BoundsMode::Hamerly);
        assert_eq!(BoundsMode::Auto.resolve_local(256), BoundsMode::Yinyang);
        assert_eq!(BoundsMode::None.resolve_local(256), BoundsMode::None);
    }

    #[test]
    fn groups_partition_the_centroid_range() {
        for (k, mode) in [
            (1, BoundsMode::Yinyang),
            (7, BoundsMode::Hamerly),
            (97, BoundsMode::Yinyang),
            (256, BoundsMode::Yinyang),
        ] {
            let st = BoundState::<f64>::new(mode, 3, k, 2);
            let mut covered = 0;
            let mut prev_end = 0;
            for r in st.group_ranges() {
                assert_eq!(r.start, prev_end, "groups must be contiguous");
                prev_end = r.end;
                covered += r.len();
                for j in r.clone() {
                    assert_eq!(
                        st.group_of(j),
                        st.group_ranges()
                            .iter()
                            .position(|g| g.contains(&j))
                            .unwrap()
                    );
                }
            }
            assert_eq!(covered, k);
            assert_eq!(prev_end, k);
        }
    }

    /// The serial driver must reproduce the unbounded scan bit for bit
    /// through dormancy, seeding, filtering and reseeding, while
    /// centroids drift.
    #[test]
    fn serial_driver_matches_unbounded_bitwise_across_drift() {
        let n = 300;
        let (d, k) = (6, 24);
        let data = toy(n, d, 3);
        let centroids = init_centroids(&data, k, InitMethod::Forgy, 7);
        for kernel in AssignKernel::ALL {
            for mode in [BoundsMode::Hamerly, BoundsMode::Yinyang] {
                let mut st = BoundState::<f64>::new(mode, n, k, d);
                let mut scratch = BoundsScratch::default();
                let mut drifts = vec![0.0f64; k];
                let mut cur = centroids.clone();
                st.note_moved_fraction(0.0); // engage immediately
                for iter in 0..8 {
                    let plan = AssignPlan::new(kernel, &cur);
                    let mut expect = Vec::new();
                    plan.assign_batch_into(&data, 0..n, &cur, 0..k, 0, &mut expect);
                    let mut got = Vec::new();
                    let kind = st.assign_serial(&plan, &data, 0..n, &cur, &mut got, &mut scratch);
                    for i in 0..n {
                        assert_eq!(got[i].0, expect[i].0, "{kernel} {mode} iter {iter} row {i}");
                        // Filtered rows keep their cached (stale) key —
                        // keys are only fresh on scanned rows, and
                        // nothing downstream consumes them.
                        if kind != BoundsIterKind::Filter {
                            assert_eq!(
                                got[i].1.bits(),
                                expect[i].1.bits(),
                                "{kernel} {mode} iter {iter} row {i} key"
                            );
                        }
                    }
                    // Drift a few centroids a little, as a converging
                    // update would, and loosen.
                    let old = cur.clone();
                    for j in (iter % 3..k).step_by(5) {
                        for v in cur.row_mut(j) {
                            *v += 0.003 * ((j + 1) as f64) / k as f64;
                        }
                    }
                    centroid_drifts(&old, &cur, &mut drifts);
                    st.loosen(&drifts);
                }
                assert!(st.stats.seed_scans >= 1, "{kernel} {mode} never seeded");
                assert!(
                    st.stats.global_filter_hits > 0,
                    "{kernel} {mode} never filtered anything"
                );
                assert!(st.stats.savings() > 0.0, "{kernel} {mode} saved nothing");
            }
        }
    }

    /// Exact duplicate centroids create cross-group ties: the filter
    /// must keep the lowest-index winner (ties always rescan).
    #[test]
    fn duplicate_centroids_keep_lowest_index() {
        let n = 80;
        let d = 4;
        let data = toy(n, d, 9);
        let base = init_centroids(&data, 5, InitMethod::Forgy, 1);
        let mut rows: Vec<&[f64]> = Vec::new();
        for j in 0..base.rows() {
            rows.push(base.row(j));
            rows.push(base.row(j));
        }
        let cent = Matrix::from_rows(&rows);
        let k = cent.rows();
        let mut st = BoundState::<f64>::new(BoundsMode::Yinyang, n, k, d);
        let mut scratch = BoundsScratch::default();
        st.engage();
        let plan = AssignPlan::new(AssignKernel::Gemm, &cent);
        for _ in 0..3 {
            let mut got = Vec::new();
            st.assign_serial(&plan, &data, 0..n, &cent, &mut got, &mut scratch);
            for (i, &(j, _)) in got.iter().enumerate() {
                assert_eq!(j % 2, 0, "row {i}: duplicate's higher index won");
            }
            st.loosen(&vec![0.0; k]);
        }
    }

    #[test]
    fn reset_forces_reseed_and_counts() {
        let n = 50;
        let (d, k) = (3, 8);
        let data = toy(n, d, 5);
        let cent = init_centroids(&data, k, InitMethod::Forgy, 2);
        let mut st = BoundState::<f64>::new(BoundsMode::Yinyang, n, k, d);
        let mut scratch = BoundsScratch::default();
        st.engage();
        let plan = AssignPlan::new(AssignKernel::Tiled, &cent);
        let mut out = Vec::new();
        assert_eq!(
            st.assign_serial(&plan, &data, 0..n, &cent, &mut out, &mut scratch),
            BoundsIterKind::Seed
        );
        out.clear();
        assert_eq!(
            st.assign_serial(&plan, &data, 0..n, &cent, &mut out, &mut scratch),
            BoundsIterKind::Filter
        );
        st.reset();
        assert_eq!(st.stats.resets, 1);
        assert_eq!(st.iteration_kind(), BoundsIterKind::Dormant);
        st.note_moved_fraction(0.1);
        assert_eq!(st.iteration_kind(), BoundsIterKind::Seed);
        out.clear();
        assert_eq!(
            st.assign_serial(&plan, &data, 0..n, &cent, &mut out, &mut scratch),
            BoundsIterKind::Seed
        );
        assert_eq!(st.stats.seed_scans, 2);
    }

    #[test]
    fn savings_fraction_is_well_defined() {
        let mut s = BoundsStats::default();
        assert_eq!(s.savings(), 0.0);
        s.lloyd_equivalent = 100;
        s.distance_evals = 25;
        assert!((s.savings() - 0.75).abs() < 1e-12);
        let mut t = BoundsStats::default();
        t.merge(&s);
        assert_eq!(t.lloyd_equivalent, 100);
        assert_eq!(t.distance_evals, 25);
    }
}
