//! The serial Lloyd algorithm: the reference implementation every parallel
//! level is validated against, decomposed into the Assign and Update steps
//! the hierarchy distributes.

use crate::assign::{AssignKernel, AssignPlanner, LDM_BYTES_DEFAULT};
use crate::bounds::{centroid_drifts, BoundState, BoundsMode, BoundsScratch, BoundsStats};
use crate::distance::argmin_centroid;
use crate::init::{init_centroids, InitMethod};
use crate::matrix::Matrix;
use crate::scalar::Scalar;
use crate::update::{TouchedSet, UpdateMode, DELTA_FALLBACK_FRACTION};

/// Configuration of a k-means run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Hard iteration cap.
    pub max_iters: usize,
    /// Convergence threshold on the maximum centroid movement (Euclidean,
    /// not squared) between iterations. `0.0` reproduces the paper's
    /// "repeat until every centroid is fixed".
    pub tol: f64,
    /// Centroid seeding strategy.
    pub init: InitMethod,
    /// RNG seed for the seeding strategy.
    pub seed: u64,
    /// Which Assign kernel the iteration loop runs (the final
    /// labels-vs-centroids Assign always uses the exact scalar reference).
    pub kernel: AssignKernel,
    /// Which Update path the iteration loop runs; all modes produce
    /// bitwise-identical centroids, labels and objective.
    pub update: UpdateMode,
    /// Bounded-assign strategy ([`BoundsMode::None`] scans every pair;
    /// the bounded modes filter via triangle-inequality bounds and stay
    /// bitwise-identical to the unbounded run).
    pub bounds: BoundsMode,
}

impl KMeansConfig {
    pub fn new(k: usize) -> Self {
        KMeansConfig {
            k,
            max_iters: 100,
            tol: 1e-9,
            init: InitMethod::Forgy,
            seed: 0,
            kernel: AssignKernel::Scalar,
            update: UpdateMode::TwoPass,
            bounds: BoundsMode::None,
        }
    }

    pub fn with_max_iters(mut self, max_iters: usize) -> Self {
        self.max_iters = max_iters;
        self
    }

    pub fn with_tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    pub fn with_init(mut self, init: InitMethod) -> Self {
        self.init = init;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn with_kernel(mut self, kernel: AssignKernel) -> Self {
        self.kernel = kernel;
        self
    }

    pub fn with_update(mut self, update: UpdateMode) -> Self {
        self.update = update;
        self
    }

    pub fn with_bounds(mut self, bounds: BoundsMode) -> Self {
        self.bounds = bounds;
        self
    }
}

/// Input validation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KMeansError {
    /// The dataset has no rows.
    EmptyDataset,
    /// `k` is zero.
    ZeroK,
    /// `k` exceeds the number of samples.
    KExceedsN { k: usize, n: usize },
    /// Provided centroids have the wrong shape.
    CentroidShape {
        expected_k: usize,
        expected_d: usize,
        got_rows: usize,
        got_cols: usize,
    },
}

impl std::fmt::Display for KMeansError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KMeansError::EmptyDataset => write!(f, "dataset has no samples"),
            KMeansError::ZeroK => write!(f, "k must be positive"),
            KMeansError::KExceedsN { k, n } => write!(f, "k = {k} exceeds n = {n}"),
            KMeansError::CentroidShape {
                expected_k,
                expected_d,
                got_rows,
                got_cols,
            } => write!(
                f,
                "centroid matrix is {got_rows}×{got_cols}, expected {expected_k}×{expected_d}"
            ),
        }
    }
}

impl std::error::Error for KMeansError {}

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult<S: Scalar> {
    /// Final centroids, `k × d`.
    pub centroids: Matrix<S>,
    /// Nearest-centroid index per sample.
    pub labels: Vec<u32>,
    /// Iterations executed.
    pub iterations: usize,
    /// Final mean objective `O(C)` (mean squared distance to the assigned
    /// centroid).
    pub objective: f64,
    /// Whether the tolerance was reached before the iteration cap.
    pub converged: bool,
    /// Pruning counters of the bounded assign layer (all zero when the
    /// run used [`BoundsMode::None`]).
    pub bounds: BoundsStats,
}

/// Assign each sample to its nearest centroid, filling `labels` and
/// returning the summed squared distance (so the mean objective is
/// `returned / n`). Ties break toward the lower centroid index.
pub fn assign_step<S: Scalar>(data: &Matrix<S>, centroids: &Matrix<S>, labels: &mut [u32]) -> f64 {
    assert_eq!(labels.len(), data.rows());
    let mut total = 0.0f64;
    for (i, label) in labels.iter_mut().enumerate() {
        let (j, d) = argmin_centroid(data.row(i), centroids);
        *label = j as u32;
        total += d.to_f64();
    }
    total
}

/// Recompute centroids as the mean of their assigned samples. A cluster with
/// no members keeps its previous centroid (`prev` row), which is the
/// standard guard and matches what an AllReduce of zero counts must do.
/// Returns the per-cluster member counts.
pub fn update_step<S: Scalar>(
    data: &Matrix<S>,
    labels: &[u32],
    prev: &Matrix<S>,
    next: &mut Matrix<S>,
) -> Vec<u64> {
    let k = prev.rows();
    assert_eq!(next.rows(), k);
    assert_eq!(next.cols(), prev.cols());
    next.fill_zero();
    let mut counts = vec![0u64; k];
    for (i, &label) in labels.iter().enumerate().take(data.rows()) {
        let j = label as usize;
        counts[j] += 1;
        let acc = next.row_mut(j);
        let row = data.row(i);
        for (a, x) in acc.iter_mut().zip(row) {
            *a += *x;
        }
    }
    for (j, &count) in counts.iter().enumerate().take(k) {
        if count == 0 {
            next.row_mut(j).copy_from_slice(prev.row(j));
        } else {
            let inv = S::ONE / S::from_usize(count as usize);
            for a in next.row_mut(j) {
                *a = *a * inv;
            }
        }
    }
    counts
}

/// Maximum Euclidean movement between two centroid sets of the same shape.
pub fn max_centroid_shift<S: Scalar>(a: &Matrix<S>, b: &Matrix<S>) -> f64 {
    let mut worst = 0.0f64;
    for j in 0..a.rows() {
        let d = crate::distance::sq_euclidean(a.row(j), b.row(j)).to_f64();
        worst = worst.max(d);
    }
    worst.sqrt()
}

/// [`max_centroid_shift`] restricted to the touched rows. Exact — not an
/// approximation — whenever every untouched row of `b` is bitwise equal to
/// its row in `a` (the delta-update invariant): identical rows contribute a
/// squared distance of exactly `0.0`, which can never be the maximum, so
/// rescanning all `k·d` values is pure waste.
pub fn max_centroid_shift_touched<S: Scalar>(
    a: &Matrix<S>,
    b: &Matrix<S>,
    touched: &TouchedSet,
) -> f64 {
    let mut worst = 0.0f64;
    for j in touched.iter() {
        let d = crate::distance::sq_euclidean(a.row(j), b.row(j)).to_f64();
        worst = worst.max(d);
    }
    worst.sqrt()
}

/// Divide accumulated `sums`/`counts` into `next` for the given rows,
/// with the standard empty-cluster guard (a zero-count row keeps its
/// `current` centroid). The division `sum · (1/count)` is the exact
/// expression [`update_step`] applies, so results are bitwise identical.
fn divide_rows_into<S: Scalar>(
    sums: &[S],
    counts: &[u64],
    current: &Matrix<S>,
    next: &mut Matrix<S>,
    rows: impl Iterator<Item = usize>,
) {
    let d = current.cols();
    for j in rows {
        let dst = next.row_mut(j);
        if counts[j] == 0 {
            dst.copy_from_slice(current.row(j));
        } else {
            let inv = S::ONE / S::from_usize(counts[j] as usize);
            for (a, &s) in dst.iter_mut().zip(&sums[j * d..(j + 1) * d]) {
                *a = s * inv;
            }
        }
    }
}

/// The serial Lloyd driver.
pub struct Lloyd;

impl Lloyd {
    /// Run k-means from automatic initialization.
    pub fn run<S: Scalar>(
        data: &Matrix<S>,
        config: &KMeansConfig,
    ) -> Result<KMeansResult<S>, KMeansError> {
        Self::validate(data, config.k)?;
        let centroids = init_centroids(data, config.k, config.init, config.seed);
        Self::run_from(data, centroids, config)
    }

    /// Run k-means from explicit initial centroids (the mode the paper's
    /// experiments use — identical starting points across levels).
    pub fn run_from<S: Scalar>(
        data: &Matrix<S>,
        centroids: Matrix<S>,
        config: &KMeansConfig,
    ) -> Result<KMeansResult<S>, KMeansError> {
        Self::validate(data, config.k)?;
        if centroids.rows() != config.k || centroids.cols() != data.cols() {
            return Err(KMeansError::CentroidShape {
                expected_k: config.k,
                expected_d: data.cols(),
                got_rows: centroids.rows(),
                got_cols: centroids.cols(),
            });
        }
        let n = data.rows();
        let (k, d) = (config.k, data.cols());
        let mut current = centroids;
        let mut next = Matrix::<S>::zeros(k, d);
        let mut labels = vec![0u32; n];
        let mut converged = false;
        let mut iterations = 0;
        let mut assigned: Vec<(u32, S)> = Vec::with_capacity(n);
        // Fused/delta state: per-cluster accumulators (delta keeps them
        // across iterations — global sums of the last full/partial
        // recompute), the previous labels and the touched-row set.
        let mut sums: Vec<S> = Vec::new();
        let mut counts: Vec<u64> = Vec::new();
        if config.update != UpdateMode::TwoPass {
            sums = vec![S::ZERO; k * d];
            counts = vec![0u64; k];
        }
        let mut prev_labels: Vec<u32> = Vec::new();
        let mut touched = TouchedSet::new(if config.update == UpdateMode::Delta {
            k
        } else {
            0
        });
        // One planner for the whole run: norms (and the GEMM kernel's
        // packed panels) carry over between iterations, refreshed only for
        // rows whose bits moved — which on a delta run's convergence tail
        // is a small minority. The Scalar kernel's plan path stays
        // bit-identical to the historical per-sample `argmin_centroid`
        // scan.
        let mut planner = AssignPlanner::new(config.kernel, LDM_BYTES_DEFAULT);
        // Bounded assign: a per-sample bound state filters rows whose
        // argmin provably didn't change, and the survivors go through the
        // same plan. Results are bitwise-identical to the unbounded run;
        // under bounds the Fused mode accumulates with the two-pass sweep
        // (the filtered rows break the fused fold's ascending sample
        // order, and the two sweeps are bitwise-equivalent anyway).
        let bounds_mode = config.bounds.resolve_local(k);
        let mut bound_state: Option<BoundState<S>> = match bounds_mode {
            BoundsMode::None => None,
            mode => Some(BoundState::new(mode, n, k, d)),
        };
        let mut bscratch = BoundsScratch::default();
        let mut drifts: Vec<f64> = Vec::new();
        let mut bprev_labels: Vec<u32> = Vec::new();
        for _ in 0..config.max_iters {
            let plan = planner.plan(&current);
            assigned.clear();
            let fuse_inline = config.update == UpdateMode::Fused && bound_state.is_none();
            if fuse_inline {
                sums.fill(S::ZERO);
                counts.fill(0);
                plan.assign_accumulate_into(
                    data,
                    0..n,
                    &current,
                    0..k,
                    0,
                    &mut assigned,
                    &mut sums,
                    &mut counts,
                );
            } else if let Some(st) = &mut bound_state {
                st.assign_serial(&plan, data, 0..n, &current, &mut assigned, &mut bscratch);
            } else {
                plan.assign_batch_into(data, 0..n, &current, 0..k, 0, &mut assigned);
            }
            for (label, &(j, _)) in labels.iter_mut().zip(&assigned) {
                *label = j;
            }
            let shift;
            match config.update {
                UpdateMode::TwoPass => {
                    update_step(data, &labels, &current, &mut next);
                    shift = max_centroid_shift(&current, &next);
                }
                UpdateMode::Fused => {
                    if fuse_inline {
                        divide_rows_into(&sums, &counts, &current, &mut next, 0..k);
                    } else {
                        update_step(data, &labels, &current, &mut next);
                    }
                    shift = max_centroid_shift(&current, &next);
                }
                UpdateMode::Delta => {
                    let first = iterations == 0;
                    let mut moved = n as u64;
                    if !first {
                        touched.clear();
                        moved = 0;
                        for (&new, &old) in labels.iter().zip(&prev_labels) {
                            if new != old {
                                moved += 1;
                                touched.mark(old as usize);
                                touched.mark(new as usize);
                            }
                        }
                    }
                    if first || moved as f64 / n as f64 >= DELTA_FALLBACK_FRACTION {
                        // Fall back to a full recompute: the sparse path
                        // would touch most rows anyway.
                        sums.fill(S::ZERO);
                        counts.fill(0);
                        for (i, &label) in labels.iter().enumerate() {
                            let j = label as usize;
                            counts[j] += 1;
                            for (a, &x) in sums[j * d..(j + 1) * d].iter_mut().zip(data.row(i)) {
                                *a += x;
                            }
                        }
                        divide_rows_into(&sums, &counts, &current, &mut next, 0..k);
                        shift = max_centroid_shift(&current, &next);
                    } else {
                        // Recompute exactly the touched rows, from scratch,
                        // in ascending sample order — the same fold sequence
                        // the two-pass sweep produces for those rows — and
                        // keep every untouched row bitwise as-is.
                        for j in touched.iter() {
                            counts[j] = 0;
                            sums[j * d..(j + 1) * d].fill(S::ZERO);
                        }
                        for (i, &label) in labels.iter().enumerate() {
                            let j = label as usize;
                            if touched.contains(j) {
                                counts[j] += 1;
                                for (a, &x) in sums[j * d..(j + 1) * d].iter_mut().zip(data.row(i))
                                {
                                    *a += x;
                                }
                            }
                        }
                        for j in 0..k {
                            if !touched.contains(j) {
                                next.row_mut(j).copy_from_slice(current.row(j));
                            }
                        }
                        divide_rows_into(&sums, &counts, &current, &mut next, touched.iter());
                        shift = max_centroid_shift_touched(&current, &next, &touched);
                    }
                    prev_labels.clear();
                    prev_labels.extend_from_slice(&labels);
                }
            }
            if let Some(st) = &mut bound_state {
                // Moved fraction drives engagement; drifts (current → next)
                // loosen the bounds before the next Assign consumes them.
                let moved = if bprev_labels.is_empty() {
                    1.0
                } else {
                    let m = labels
                        .iter()
                        .zip(&bprev_labels)
                        .filter(|(a, b)| a != b)
                        .count();
                    m as f64 / n as f64
                };
                bprev_labels.clear();
                bprev_labels.extend_from_slice(&labels);
                if st.seeded() {
                    centroid_drifts(&current, &next, &mut drifts);
                    st.loosen(&drifts);
                }
                st.note_moved_fraction(moved);
            }
            iterations += 1;
            std::mem::swap(&mut current, &mut next);
            if shift <= config.tol {
                converged = true;
                break;
            }
        }
        // Labels correspond to the centroids used in the last Assign; do a
        // final Assign so labels and returned centroids agree.
        let objective = assign_step(data, &current, &mut labels) / n as f64;
        Ok(KMeansResult {
            centroids: current,
            labels,
            iterations,
            objective,
            converged,
            bounds: bound_state.map(|s| s.stats).unwrap_or_default(),
        })
    }

    fn validate<S: Scalar>(data: &Matrix<S>, k: usize) -> Result<(), KMeansError> {
        if data.rows() == 0 {
            return Err(KMeansError::EmptyDataset);
        }
        if k == 0 {
            return Err(KMeansError::ZeroK);
        }
        if k > data.rows() {
            return Err(KMeansError::KExceedsN { k, n: data.rows() });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Matrix<f64> {
        let mut data = Vec::new();
        for i in 0..60 {
            let j = (i % 10) as f64 * 0.02;
            match i % 3 {
                0 => data.extend([j, j]),
                1 => data.extend([8.0 + j, j]),
                _ => data.extend([j, 8.0 + j]),
            }
        }
        Matrix::from_vec(60, 2, data)
    }

    #[test]
    fn converges_on_blobs() {
        let data = blobs();
        let cfg = KMeansConfig::new(3).with_seed(1);
        let res = Lloyd::run(&data, &cfg).unwrap();
        assert!(res.converged);
        assert!(res.iterations < 20);
        assert!(res.objective < 0.1, "objective {}", res.objective);
        // Each blob ends as one pure cluster.
        for i in 0..60 {
            assert_eq!(res.labels[i], res.labels[i % 3], "sample {i}");
        }
    }

    #[test]
    fn objective_is_non_increasing() {
        let data = blobs();
        let centroids = init_centroids(&data, 3, InitMethod::Forgy, 42);
        let mut current = centroids;
        let mut next = Matrix::<f64>::zeros(3, 2);
        let mut labels = vec![0u32; data.rows()];
        let mut prev_obj = f64::INFINITY;
        for _ in 0..10 {
            let obj = assign_step(&data, &current, &mut labels) / data.rows() as f64;
            assert!(
                obj <= prev_obj + 1e-12,
                "objective increased: {prev_obj} -> {obj}"
            );
            prev_obj = obj;
            update_step(&data, &labels, &current, &mut next);
            std::mem::swap(&mut current, &mut next);
        }
    }

    #[test]
    fn empty_cluster_keeps_previous_centroid() {
        let data = Matrix::from_rows(&[&[0.0f64], &[1.0]]);
        let prev = Matrix::from_rows(&[&[0.5f64], &[100.0]]);
        let mut next = Matrix::<f64>::zeros(2, 1);
        // Both samples are nearest to centroid 0.
        let mut labels = vec![0u32; 2];
        assign_step(&data, &prev, &mut labels);
        assert_eq!(labels, vec![0, 0]);
        let counts = update_step(&data, &labels, &prev, &mut next);
        assert_eq!(counts, vec![2, 0]);
        assert_eq!(next.get(0, 0), 0.5);
        assert_eq!(next.get(1, 0), 100.0); // kept
    }

    #[test]
    fn run_from_requires_matching_shape() {
        let data = blobs();
        let bad = Matrix::<f64>::zeros(3, 5);
        let err = Lloyd::run_from(&data, bad, &KMeansConfig::new(3)).unwrap_err();
        assert!(matches!(err, KMeansError::CentroidShape { .. }));
    }

    #[test]
    fn validation_errors() {
        let empty = Matrix::<f64>::zeros(0, 2);
        assert_eq!(
            Lloyd::run(&empty, &KMeansConfig::new(1)).unwrap_err(),
            KMeansError::EmptyDataset
        );
        let data = blobs();
        assert_eq!(
            Lloyd::run(&data, &KMeansConfig::new(0)).unwrap_err(),
            KMeansError::ZeroK
        );
        assert!(matches!(
            Lloyd::run(&data, &KMeansConfig::new(61)).unwrap_err(),
            KMeansError::KExceedsN { .. }
        ));
    }

    #[test]
    fn max_iters_caps_work() {
        let data = blobs();
        let cfg = KMeansConfig::new(3).with_max_iters(1).with_seed(9);
        let res = Lloyd::run(&data, &cfg).unwrap();
        assert_eq!(res.iterations, 1);
    }

    #[test]
    fn single_cluster_centers_on_mean() {
        let data = Matrix::from_rows(&[&[1.0f64, 0.0], &[3.0, 0.0], &[5.0, 6.0]]);
        let res = Lloyd::run(&data, &KMeansConfig::new(1)).unwrap();
        assert!((res.centroids.get(0, 0) - 3.0).abs() < 1e-12);
        assert!((res.centroids.get(0, 1) - 2.0).abs() < 1e-12);
        assert_eq!(res.labels, vec![0, 0, 0]);
    }

    #[test]
    fn k_equals_n_pins_each_sample() {
        let data = Matrix::from_rows(&[&[0.0f64], &[10.0], &[20.0]]);
        let cfg = KMeansConfig::new(3).with_seed(4);
        let res = Lloyd::run(&data, &cfg).unwrap();
        assert!(res.objective < 1e-12);
        let mut sorted: Vec<u32> = res.labels.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "each sample its own cluster");
    }

    #[test]
    fn labels_match_final_centroids() {
        let data = blobs();
        let cfg = KMeansConfig::new(3).with_seed(2).with_max_iters(3);
        let res = Lloyd::run(&data, &cfg).unwrap();
        let mut labels = vec![0u32; data.rows()];
        assign_step(&data, &res.centroids, &mut labels);
        assert_eq!(labels, res.labels);
    }

    #[test]
    fn expanded_and_tiled_kernels_reach_the_same_fit() {
        let data = blobs();
        let reference = Lloyd::run(&data, &KMeansConfig::new(3).with_seed(1)).unwrap();
        for kernel in [
            AssignKernel::Expanded,
            AssignKernel::Tiled,
            AssignKernel::Gemm,
        ] {
            let cfg = KMeansConfig::new(3).with_seed(1).with_kernel(kernel);
            let res = Lloyd::run(&data, &cfg).unwrap();
            // A near-tie early on may permute cluster identities, so compare
            // the induced partition and the objective, not raw label ids.
            for i in 0..res.labels.len() {
                for j in 0..i {
                    assert_eq!(
                        res.labels[i] == res.labels[j],
                        reference.labels[i] == reference.labels[j],
                        "{kernel}: samples {i},{j} split differently"
                    );
                }
            }
            assert!((res.objective - reference.objective).abs() < 1e-9);
        }
    }

    #[test]
    fn fused_and_delta_match_twopass_bitwise() {
        let data = blobs();
        for kernel in AssignKernel::ALL {
            let base = KMeansConfig::new(3).with_seed(1).with_kernel(kernel);
            let reference = Lloyd::run(&data, &base).unwrap();
            for update in [UpdateMode::Fused, UpdateMode::Delta] {
                let res = Lloyd::run(&data, &base.with_update(update)).unwrap();
                assert_eq!(res.labels, reference.labels, "{kernel}/{update}");
                assert_eq!(res.iterations, reference.iterations, "{kernel}/{update}");
                assert_eq!(res.converged, reference.converged, "{kernel}/{update}");
                assert_eq!(
                    res.objective.to_bits(),
                    reference.objective.to_bits(),
                    "{kernel}/{update}: objective differs"
                );
                for j in 0..3 {
                    assert!(
                        res.centroids
                            .row(j)
                            .iter()
                            .zip(reference.centroids.row(j))
                            .all(|(a, b)| a.to_bits() == b.to_bits()),
                        "{kernel}/{update}: centroid {j} not bitwise equal"
                    );
                }
            }
        }
    }

    #[test]
    fn delta_handles_empty_clusters_like_twopass() {
        // k = n with a degenerate duplicate sample forces an empty cluster
        // during iteration; the delta path must keep its centroid bitwise.
        let data = Matrix::from_rows(&[&[0.0f64], &[0.0], &[10.0], &[20.0]]);
        let base = KMeansConfig::new(4).with_seed(2).with_max_iters(6);
        let reference = Lloyd::run(&data, &base).unwrap();
        let delta = Lloyd::run(&data, &base.with_update(UpdateMode::Delta)).unwrap();
        assert_eq!(delta.labels, reference.labels);
        assert_eq!(delta.objective.to_bits(), reference.objective.to_bits());
        for j in 0..4 {
            assert_eq!(
                delta.centroids.get(j, 0).to_bits(),
                reference.centroids.get(j, 0).to_bits()
            );
        }
    }

    #[test]
    fn touched_shift_equals_full_shift_under_the_delta_invariant() {
        let a = Matrix::from_rows(&[&[0.0f64, 1.0], &[2.0, 3.0], &[4.0, 5.0]]);
        let mut b = a.clone();
        b.row_mut(1)[0] = 2.5; // only row 1 moves
        let mut touched = TouchedSet::new(3);
        touched.mark(1);
        assert_eq!(
            max_centroid_shift_touched(&a, &b, &touched).to_bits(),
            max_centroid_shift(&a, &b).to_bits()
        );
        // An empty touched set means nothing moved.
        assert_eq!(max_centroid_shift_touched(&a, &a, &TouchedSet::new(3)), 0.0);
    }

    #[test]
    fn bounded_runs_match_unbounded_bitwise() {
        use crate::bounds::BoundsMode;
        // Pseudo-random blobs, big enough that the moved fraction decays
        // over several iterations and the bound state actually engages.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next_f = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 4.0
        };
        let (n, d, k) = (400usize, 6usize, 24usize);
        let mut raw = Vec::with_capacity(n * d);
        for i in 0..n {
            let off = (i % 8) as f64 * 3.0;
            for _ in 0..d {
                raw.push(off + next_f());
            }
        }
        let data = Matrix::from_vec(n, d, raw);
        for kernel in AssignKernel::ALL {
            for update in [UpdateMode::TwoPass, UpdateMode::Fused, UpdateMode::Delta] {
                let base = KMeansConfig::new(k)
                    .with_seed(7)
                    .with_kernel(kernel)
                    .with_update(update)
                    .with_max_iters(16)
                    .with_tol(0.0);
                let reference = Lloyd::run(&data, &base).unwrap();
                for bounds in [BoundsMode::Hamerly, BoundsMode::Yinyang, BoundsMode::Auto] {
                    let res = Lloyd::run(&data, &base.with_bounds(bounds)).unwrap();
                    let tag = format!("{kernel}/{update}/{bounds}");
                    assert_eq!(res.labels, reference.labels, "{tag}");
                    assert_eq!(res.iterations, reference.iterations, "{tag}");
                    assert_eq!(res.converged, reference.converged, "{tag}");
                    assert_eq!(
                        res.objective.to_bits(),
                        reference.objective.to_bits(),
                        "{tag}: objective differs"
                    );
                    for j in 0..k {
                        assert!(
                            res.centroids
                                .row(j)
                                .iter()
                                .zip(reference.centroids.row(j))
                                .all(|(a, b)| a.to_bits() == b.to_bits()),
                            "{tag}: centroid {j} not bitwise equal"
                        );
                    }
                    assert!(res.bounds.lloyd_equivalent > 0, "{tag}: no stats");
                }
            }
        }
    }

    #[test]
    fn f32_pipeline_runs() {
        let data: Matrix<f32> = blobs().cast();
        let cfg = KMeansConfig::new(3)
            .with_seed(3)
            .with_init(InitMethod::KMeansPlusPlus);
        let res = Lloyd::run(&data, &cfg).unwrap();
        assert!(res.objective < 0.1);
    }
}
