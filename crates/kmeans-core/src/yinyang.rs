//! Yinyang k-means (Ding et al., ICML 2015) — the multi-core baseline of
//! the paper's Table III, implemented as an exact drop-in accelerated
//! Lloyd.
//!
//! The algorithm maintains, per sample, an upper bound on the distance to
//! its assigned centroid and per-*group* lower bounds on the distance to
//! every other centroid group (centroids are pre-clustered into
//! `t ≈ k/10` groups). Triangle-inequality bookkeeping filters out most
//! distance computations: a sample whose upper bound stays below all its
//! group lower bounds provably keeps its assignment. Results are
//! *identical* to Lloyd at every iteration (same argmin, same means) —
//! only the work differs, which [`YinyangStats`] exposes.

use crate::distance::sq_euclidean_unrolled;
use crate::init::{init_centroids, InitMethod};
use crate::lloyd::{update_step, KMeansConfig, KMeansError, KMeansResult};
use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// Work counters for the filtering effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct YinyangStats {
    /// Point-centroid distance evaluations performed.
    pub distance_evals: u64,
    /// Distance evaluations plain Lloyd would have performed (`n·k·iters`).
    pub lloyd_equivalent: u64,
    /// Samples skipped by the global group filter.
    pub global_filter_hits: u64,
    /// Group scans skipped by the per-group filter.
    pub group_filter_hits: u64,
}

impl YinyangStats {
    /// Fraction of Lloyd's distance work avoided.
    pub fn savings(&self) -> f64 {
        if self.lloyd_equivalent == 0 {
            return 0.0;
        }
        1.0 - self.distance_evals as f64 / self.lloyd_equivalent as f64
    }
}

/// Run Yinyang k-means from explicit initial centroids. Produces the same
/// result as `Lloyd::run_from` with the same configuration.
pub fn run_from<S: Scalar>(
    data: &Matrix<S>,
    init: Matrix<S>,
    config: &KMeansConfig,
) -> Result<(KMeansResult<S>, YinyangStats), KMeansError> {
    let n = data.rows();
    let d = data.cols();
    let k = config.k;
    if n == 0 {
        return Err(KMeansError::EmptyDataset);
    }
    if k == 0 {
        return Err(KMeansError::ZeroK);
    }
    if k > n {
        return Err(KMeansError::KExceedsN { k, n });
    }
    if init.rows() != k || init.cols() != d {
        return Err(KMeansError::CentroidShape {
            expected_k: k,
            expected_d: d,
            got_rows: init.rows(),
            got_cols: init.cols(),
        });
    }

    let mut stats = YinyangStats::default();
    let t = group_count(k);
    let groups = group_centroids(&init, t);
    let group_of: Vec<usize> = groups.clone();
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); t];
    for (j, &g) in group_of.iter().enumerate() {
        members[g].push(j);
    }

    let dist = |a: &[S], b: &[S], stats: &mut YinyangStats| -> f64 {
        stats.distance_evals += 1;
        sq_euclidean_unrolled(a, b).to_f64().sqrt()
    };

    let mut centroids = init;
    let mut next = Matrix::<S>::zeros(k, d);
    let mut labels = vec![0u32; n];
    let mut ub = vec![0.0f64; n];
    let mut lb = vec![0.0f64; n * t];

    // ---- First iteration: full Lloyd assign, seeding the bounds. ----
    for i in 0..n {
        let row = data.row(i);
        let mut best = f64::INFINITY;
        let mut best_j = 0usize;
        let mut group_min = vec![f64::INFINITY; t];
        for j in 0..k {
            let dj = dist(row, centroids.row(j), &mut stats);
            if dj < best {
                // The displaced best becomes a candidate lower bound for
                // its group.
                if best.is_finite() {
                    let g_old = group_of[best_j];
                    group_min[g_old] = group_min[g_old].min(best);
                }
                best = dj;
                best_j = j;
            } else {
                let g = group_of[j];
                group_min[g] = group_min[g].min(dj);
            }
        }
        labels[i] = best_j as u32;
        ub[i] = best;
        lb[i * t..(i + 1) * t].copy_from_slice(&group_min);
    }
    stats.lloyd_equivalent += (n * k) as u64;

    let mut iterations = 1usize;
    let mut converged = false;
    let mut drift = vec![0.0f64; k];
    let mut group_drift = vec![0.0f64; t];

    // Update after the seeding assign.
    let counts = update_step(data, &labels, &centroids, &mut next);
    let shift = compute_drifts(&centroids, &next, &mut drift);
    let _ = counts;
    std::mem::swap(&mut centroids, &mut next);
    if shift <= config.tol {
        converged = true;
    }

    while !converged && iterations < config.max_iters {
        for g in 0..t {
            group_drift[g] = members[g].iter().map(|&j| drift[j]).fold(0.0f64, f64::max);
        }
        stats.lloyd_equivalent += (n * k) as u64;

        for i in 0..n {
            let row = data.row(i);
            let b = labels[i] as usize;
            // Loosen the bounds by the centroid movements.
            ub[i] += drift[b];
            let lbs = &mut lb[i * t..(i + 1) * t];
            let mut global_lb = f64::INFINITY;
            for (g, l) in lbs.iter_mut().enumerate() {
                *l -= group_drift[g];
                global_lb = global_lb.min(*l);
            }
            // Global filter.
            if ub[i] <= global_lb {
                stats.global_filter_hits += 1;
                continue;
            }
            // Tighten the upper bound and retest.
            ub[i] = dist(row, centroids.row(b), &mut stats);
            if ub[i] <= global_lb {
                stats.global_filter_hits += 1;
                continue;
            }
            // Group filtering: scan only groups whose lower bound fails.
            let mut best = ub[i];
            let mut best_j = b;
            let lbs_snapshot: Vec<f64> = lb[i * t..(i + 1) * t].to_vec();
            for g in 0..t {
                if lbs_snapshot[g] >= best && g != group_of[b] {
                    stats.group_filter_hits += 1;
                    continue;
                }
                // Exact scan of group g, tracking its new lower bound.
                let mut gmin = f64::INFINITY;
                for &j in &members[g] {
                    if j == b {
                        continue;
                    }
                    let dj = dist(row, centroids.row(j), &mut stats);
                    if dj < best || (dj == best && j < best_j) {
                        // Displaced best contributes to its group's bound.
                        let g_prev = group_of[best_j];
                        if g_prev == g && best_j != b {
                            gmin = gmin.min(best);
                        } else if best_j != b {
                            let l = &mut lb[i * t + g_prev];
                            *l = l.min(best);
                        }
                        best = dj;
                        best_j = j;
                    } else {
                        gmin = gmin.min(dj);
                    }
                }
                lb[i * t + g] = gmin;
            }
            // The old assigned centroid becomes a bound for its group if it
            // lost.
            if best_j != b {
                let g_old = group_of[b];
                let l = &mut lb[i * t + g_old];
                *l = l.min(ub[i]);
                labels[i] = best_j as u32;
                ub[i] = best;
            }
        }

        let _counts = update_step(data, &labels, &centroids, &mut next);
        let shift = compute_drifts(&centroids, &next, &mut drift);
        std::mem::swap(&mut centroids, &mut next);
        iterations += 1;
        if shift <= config.tol {
            converged = true;
        }
    }

    // Final exact assign so labels match the returned centroids.
    let mut final_labels = vec![0u32; n];
    let objective = crate::lloyd::assign_step(data, &centroids, &mut final_labels) / n as f64;
    Ok((
        KMeansResult {
            centroids,
            labels: final_labels,
            iterations,
            objective,
            converged,
            bounds: crate::bounds::BoundsStats::default(),
        },
        stats,
    ))
}

/// Number of centroid groups: the Ding et al. heuristic `k/10`, at least 1.
fn group_count(k: usize) -> usize {
    (k / 10).max(1)
}

/// Cluster the centroids themselves into `t` groups (a short k-means on the
/// centroid matrix), returning each centroid's group index.
fn group_centroids<S: Scalar>(centroids: &Matrix<S>, t: usize) -> Vec<usize> {
    let k = centroids.rows();
    if t >= k {
        return (0..k).collect();
    }
    let seeds = init_centroids(centroids, t, InitMethod::Forgy, 0x9999);
    let mut group_centers = seeds;
    let mut labels = vec![0u32; k];
    let mut next = Matrix::<S>::zeros(t, centroids.cols());
    for _ in 0..5 {
        crate::lloyd::assign_step(centroids, &group_centers, &mut labels);
        update_step(centroids, &labels, &group_centers, &mut next);
        std::mem::swap(&mut group_centers, &mut next);
    }
    crate::lloyd::assign_step(centroids, &group_centers, &mut labels);
    labels.into_iter().map(|l| l as usize).collect()
}

/// Per-centroid movement (Euclidean); returns the maximum.
fn compute_drifts<S: Scalar>(old: &Matrix<S>, new: &Matrix<S>, drift: &mut [f64]) -> f64 {
    let mut worst = 0.0f64;
    for (j, slot) in drift.iter_mut().enumerate().take(old.rows()) {
        let d = sq_euclidean_unrolled(old.row(j), new.row(j))
            .to_f64()
            .sqrt();
        *slot = d;
        worst = worst.max(d);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lloyd::Lloyd;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn mixture(n: usize, d: usize, k: usize, seed: u64) -> Matrix<f64> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let centers: Vec<Vec<f64>> = (0..k)
            .map(|_| (0..d).map(|_| rng.gen_range(-20.0..20.0)).collect())
            .collect();
        let mut data = Vec::with_capacity(n * d);
        for i in 0..n {
            let c = &centers[i % k];
            data.extend(c.iter().map(|v| v + rng.gen_range(-1.0..1.0)));
        }
        Matrix::from_vec(n, d, data)
    }

    #[test]
    fn matches_lloyd_exactly() {
        for seed in [1u64, 2, 3] {
            let data = mixture(400, 8, 12, seed);
            let init = init_centroids(&data, 12, InitMethod::Forgy, seed);
            let cfg = KMeansConfig::new(12).with_max_iters(15).with_tol(0.0);
            let lloyd = Lloyd::run_from(&data, init.clone(), &cfg).unwrap();
            let (yy, _) = run_from(&data, init, &cfg).unwrap();
            assert_eq!(yy.labels, lloyd.labels, "seed {seed}");
            assert!(
                yy.centroids.max_abs_diff(&lloyd.centroids) < 1e-9,
                "seed {seed}: diff {}",
                yy.centroids.max_abs_diff(&lloyd.centroids)
            );
            assert_eq!(yy.iterations, lloyd.iterations);
        }
    }

    #[test]
    fn converged_runs_agree_too() {
        let data = mixture(300, 6, 8, 7);
        let init = init_centroids(&data, 8, InitMethod::KMeansPlusPlus, 7);
        let cfg = KMeansConfig::new(8).with_max_iters(100).with_tol(1e-9);
        let lloyd = Lloyd::run_from(&data, init.clone(), &cfg).unwrap();
        let (yy, _) = run_from(&data, init, &cfg).unwrap();
        assert!(yy.converged);
        assert_eq!(yy.labels, lloyd.labels);
        assert!((yy.objective - lloyd.objective).abs() < 1e-9);
    }

    #[test]
    fn filters_save_substantial_work() {
        // Well-separated clusters converge fast; after the first iteration
        // almost every point passes the global filter.
        let data = mixture(1_000, 16, 30, 4);
        let init = init_centroids(&data, 30, InitMethod::KMeansPlusPlus, 4);
        let cfg = KMeansConfig::new(30).with_max_iters(25).with_tol(1e-9);
        let (_, stats) = run_from(&data, init, &cfg).unwrap();
        assert!(
            stats.savings() > 0.3,
            "only {:.0}% distance work saved ({} vs {})",
            stats.savings() * 100.0,
            stats.distance_evals,
            stats.lloyd_equivalent
        );
        assert!(stats.global_filter_hits > 0);
    }

    #[test]
    fn small_k_uses_single_group() {
        assert_eq!(group_count(5), 1);
        assert_eq!(group_count(10), 1);
        assert_eq!(group_count(100), 10);
        let data = mixture(100, 4, 3, 9);
        let init = init_centroids(&data, 3, InitMethod::Forgy, 9);
        let cfg = KMeansConfig::new(3).with_max_iters(10).with_tol(0.0);
        let lloyd = Lloyd::run_from(&data, init.clone(), &cfg).unwrap();
        let (yy, _) = run_from(&data, init, &cfg).unwrap();
        assert_eq!(yy.labels, lloyd.labels);
    }

    #[test]
    fn f32_agrees_with_its_lloyd() {
        let data: Matrix<f32> = mixture(200, 5, 6, 11).cast();
        let init = init_centroids(&data, 6, InitMethod::Forgy, 11);
        let cfg = KMeansConfig::new(6).with_max_iters(8).with_tol(0.0);
        let lloyd = Lloyd::run_from(&data, init.clone(), &cfg).unwrap();
        let (yy, _) = run_from(&data, init, &cfg).unwrap();
        assert_eq!(yy.labels, lloyd.labels);
    }

    #[test]
    fn input_validation() {
        let data = mixture(10, 2, 2, 1);
        let cfg = KMeansConfig::new(0);
        assert!(matches!(
            run_from(&data, Matrix::zeros(0, 2), &cfg).unwrap_err(),
            KMeansError::ZeroK
        ));
        let cfg = KMeansConfig::new(2);
        assert!(matches!(
            run_from(&data, Matrix::zeros(2, 5), &cfg).unwrap_err(),
            KMeansError::CentroidShape { .. }
        ));
    }

    #[test]
    fn centroid_grouping_covers_all() {
        let data = mixture(50, 4, 40, 2);
        let init = init_centroids(&data, 40, InitMethod::Forgy, 2);
        let groups = group_centroids(&init, 4);
        assert_eq!(groups.len(), 40);
        assert!(groups.iter().all(|&g| g < 4));
    }
}
