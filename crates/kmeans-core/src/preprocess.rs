//! Feature preprocessing: per-column statistics, z-score standardisation
//! and min-max scaling. k-means is scale-sensitive; the UCI-style
//! workloads (mixed-unit columns like the Road Network's lon/lat/altitude)
//! need this before distances mean anything.

use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// Per-column summary statistics of a dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    pub mean: Vec<f64>,
    pub std_dev: Vec<f64>,
    pub min: Vec<f64>,
    pub max: Vec<f64>,
}

impl ColumnStats {
    /// Compute statistics over all rows. Panics on an empty matrix.
    pub fn compute<S: Scalar>(data: &Matrix<S>) -> Self {
        assert!(data.rows() > 0, "empty dataset");
        let d = data.cols();
        let n = data.rows() as f64;
        let mut mean = vec![0.0f64; d];
        let mut min = vec![f64::INFINITY; d];
        let mut max = vec![f64::NEG_INFINITY; d];
        for row in data.iter_rows() {
            for (u, &v) in row.iter().enumerate() {
                let v = v.to_f64();
                mean[u] += v;
                min[u] = min[u].min(v);
                max[u] = max[u].max(v);
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0f64; d];
        for row in data.iter_rows() {
            for (u, &v) in row.iter().enumerate() {
                let diff = v.to_f64() - mean[u];
                var[u] += diff * diff;
            }
        }
        let std_dev = var.into_iter().map(|v| (v / n).sqrt()).collect();
        ColumnStats {
            mean,
            std_dev,
            min,
            max,
        }
    }

    /// Z-score a dataset in place using these statistics. Zero-variance
    /// columns are centred only (no division by zero).
    pub fn standardize<S: Scalar>(&self, data: &mut Matrix<S>) {
        let d = data.cols();
        assert_eq!(d, self.mean.len(), "stats computed for another width");
        for i in 0..data.rows() {
            let row = data.row_mut(i);
            for (u, x) in row.iter_mut().enumerate().take(d) {
                let mut v = x.to_f64() - self.mean[u];
                if self.std_dev[u] > 0.0 {
                    v /= self.std_dev[u];
                }
                *x = S::from_f64(v);
            }
        }
    }

    /// Min-max scale a dataset in place to `[0, 1]`. Constant columns map
    /// to 0.
    pub fn min_max_scale<S: Scalar>(&self, data: &mut Matrix<S>) {
        let d = data.cols();
        assert_eq!(d, self.mean.len(), "stats computed for another width");
        for i in 0..data.rows() {
            let row = data.row_mut(i);
            for (u, x) in row.iter_mut().enumerate().take(d) {
                let range = self.max[u] - self.min[u];
                let v = if range > 0.0 {
                    (x.to_f64() - self.min[u]) / range
                } else {
                    0.0
                };
                *x = S::from_f64(v);
            }
        }
    }
}

/// Convenience: standardise a copy of the data.
pub fn standardized<S: Scalar>(data: &Matrix<S>) -> Matrix<S> {
    let stats = ColumnStats::compute(data);
    let mut out = data.clone();
    stats.standardize(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix<f64> {
        Matrix::from_rows(&[&[1.0f64, 10.0, 5.0], &[3.0, 20.0, 5.0], &[5.0, 60.0, 5.0]])
    }

    #[test]
    fn stats_are_correct() {
        let s = ColumnStats::compute(&sample());
        assert_eq!(s.mean, vec![3.0, 30.0, 5.0]);
        assert_eq!(s.min, vec![1.0, 10.0, 5.0]);
        assert_eq!(s.max, vec![5.0, 60.0, 5.0]);
        assert!((s.std_dev[0] - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.std_dev[2], 0.0);
    }

    #[test]
    fn standardize_centres_and_scales() {
        let mut m = sample();
        let s = ColumnStats::compute(&m);
        s.standardize(&mut m);
        let after = ColumnStats::compute(&m);
        for u in 0..2 {
            assert!(after.mean[u].abs() < 1e-12);
            assert!((after.std_dev[u] - 1.0).abs() < 1e-12);
        }
        // Constant column: centred to zero, not divided.
        assert_eq!(m.get(0, 2), 0.0);
        assert_eq!(after.std_dev[2], 0.0);
    }

    #[test]
    fn min_max_maps_to_unit_interval() {
        let mut m = sample();
        let s = ColumnStats::compute(&m);
        s.min_max_scale(&mut m);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(2, 0), 1.0);
        assert_eq!(m.get(1, 1), 0.2);
        assert_eq!(m.get(0, 2), 0.0); // constant column
    }

    #[test]
    fn standardized_copy_leaves_original() {
        let m = sample();
        let z = standardized(&m);
        assert_eq!(m.get(0, 0), 1.0);
        assert!(z.get(0, 0) < 0.0);
    }

    #[test]
    fn f32_round_trip() {
        let mut m: Matrix<f32> = sample().cast();
        let s = ColumnStats::compute(&m);
        s.standardize(&mut m);
        assert!(m.get(0, 0) < 0.0);
    }

    #[test]
    #[should_panic(expected = "another width")]
    fn width_mismatch_panics() {
        let s = ColumnStats::compute(&sample());
        let mut other = Matrix::<f64>::zeros(2, 5);
        s.standardize(&mut other);
    }
}
