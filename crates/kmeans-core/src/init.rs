//! Centroid initialization strategies.
//!
//! The paper initialises centroids externally (its experiments measure
//! per-iteration time, not convergence), so any seeding works for the
//! reproduction; the library still ships the standard options a downstream
//! user expects.

use crate::distance::sq_euclidean_unrolled;
use crate::matrix::Matrix;
use crate::scalar::Scalar;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// How initial centroids are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitMethod {
    /// k distinct samples chosen uniformly at random (Forgy).
    Forgy,
    /// Assign every sample a random cluster, then average each cluster.
    RandomPartition,
    /// k-means++: D²-weighted sequential seeding (Arthur & Vassilvitskii).
    KMeansPlusPlus,
}

/// Choose `k` initial centroids from `data` with the given method and seed.
///
/// Panics if `k == 0` or `k > n` (Forgy and k-means++ need distinct rows).
pub fn init_centroids<S: Scalar>(
    data: &Matrix<S>,
    k: usize,
    method: InitMethod,
    seed: u64,
) -> Matrix<S> {
    assert!(k > 0, "k must be positive");
    assert!(
        k <= data.rows(),
        "k = {k} exceeds sample count n = {}",
        data.rows()
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    match method {
        InitMethod::Forgy => {
            let mut indices: Vec<usize> = (0..data.rows()).collect();
            indices.shuffle(&mut rng);
            indices.truncate(k);
            indices.sort_unstable(); // deterministic, cache-friendly gather
            data.select_rows(&indices)
        }
        InitMethod::RandomPartition => {
            let mut sums = Matrix::<S>::zeros(k, data.cols());
            let mut counts = vec![0usize; k];
            for i in 0..data.rows() {
                let j = rng.gen_range(0..k);
                counts[j] += 1;
                let row = data.row(i);
                let acc = sums.row_mut(j);
                for (a, x) in acc.iter_mut().zip(row) {
                    *a += *x;
                }
            }
            for (j, &count) in counts.iter().enumerate().take(k) {
                if count > 0 {
                    let inv = S::ONE / S::from_usize(count);
                    for a in sums.row_mut(j) {
                        *a = *a * inv;
                    }
                } else {
                    // An empty random partition bucket falls back to a
                    // random sample so no centroid is stuck at the origin.
                    let pick = rng.gen_range(0..data.rows());
                    sums.row_mut(j).copy_from_slice(data.row(pick));
                }
            }
            sums
        }
        InitMethod::KMeansPlusPlus => {
            let n = data.rows();
            let mut chosen: Vec<usize> = Vec::with_capacity(k);
            chosen.push(rng.gen_range(0..n));
            // d2[i] = squared distance to the nearest chosen centroid.
            let mut d2: Vec<f64> = (0..n)
                .map(|i| sq_euclidean_unrolled(data.row(i), data.row(chosen[0])).to_f64())
                .collect();
            while chosen.len() < k {
                let total: f64 = d2.iter().sum();
                let next = if total <= 0.0 {
                    // All remaining mass is zero (duplicate points); fall
                    // back to uniform choice among unchosen rows.
                    let mut pick = rng.gen_range(0..n);
                    while chosen.contains(&pick) && chosen.len() < n {
                        pick = (pick + 1) % n;
                    }
                    pick
                } else {
                    let mut target = rng.gen_range(0.0..total);
                    let mut pick = n - 1;
                    for (i, &w) in d2.iter().enumerate() {
                        if target < w {
                            pick = i;
                            break;
                        }
                        target -= w;
                    }
                    pick
                };
                chosen.push(next);
                for (i, slot) in d2.iter_mut().enumerate().take(n) {
                    let d = sq_euclidean_unrolled(data.row(i), data.row(next)).to_f64();
                    if d < *slot {
                        *slot = d;
                    }
                }
            }
            data.select_rows(&chosen)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_data() -> Matrix<f64> {
        // Three tight blobs at (0,0), (10,0), (0,10).
        let mut rows = Vec::new();
        for i in 0..30 {
            let jitter = (i % 5) as f64 * 0.01;
            match i % 3 {
                0 => rows.push([jitter, jitter]),
                1 => rows.push([10.0 + jitter, jitter]),
                _ => rows.push([jitter, 10.0 + jitter]),
            }
        }
        let flat: Vec<f64> = rows.iter().flatten().copied().collect();
        Matrix::from_vec(30, 2, flat)
    }

    #[test]
    fn forgy_picks_k_actual_samples() {
        let data = toy_data();
        let c = init_centroids(&data, 4, InitMethod::Forgy, 1);
        assert_eq!(c.rows(), 4);
        assert_eq!(c.cols(), 2);
        for i in 0..4 {
            let row = c.row(i);
            assert!(
                data.iter_rows().any(|r| r == row),
                "centroid {row:?} is not a sample"
            );
        }
    }

    #[test]
    fn forgy_is_deterministic_per_seed() {
        let data = toy_data();
        let a = init_centroids(&data, 3, InitMethod::Forgy, 7);
        let b = init_centroids(&data, 3, InitMethod::Forgy, 7);
        let c = init_centroids(&data, 3, InitMethod::Forgy, 8);
        assert_eq!(a, b);
        assert_ne!(a, c); // overwhelmingly likely with 30 choose 3 options
    }

    #[test]
    fn random_partition_produces_interior_means() {
        let data = toy_data();
        let c = init_centroids(&data, 3, InitMethod::RandomPartition, 3);
        assert_eq!(c.rows(), 3);
        // Means of random subsets of the three blobs lie inside the bounding
        // box of the data.
        for i in 0..3 {
            for &v in c.row(i) {
                assert!((0.0..=10.05).contains(&v), "out of hull: {v}");
            }
        }
    }

    #[test]
    fn kmeanspp_spreads_over_blobs() {
        let data = toy_data();
        let c = init_centroids(&data, 3, InitMethod::KMeansPlusPlus, 5);
        // With three far-apart blobs, k-means++ must take one from each.
        let mut blob_hit = [false; 3];
        for i in 0..3 {
            let r = c.row(i);
            if r[0] < 5.0 && r[1] < 5.0 {
                blob_hit[0] = true;
            } else if r[0] > 5.0 {
                blob_hit[1] = true;
            } else {
                blob_hit[2] = true;
            }
        }
        assert!(blob_hit.iter().all(|&h| h), "blobs covered: {blob_hit:?}");
    }

    #[test]
    fn kmeanspp_handles_duplicate_points() {
        let data = Matrix::from_vec(4, 1, vec![2.0f64; 4]);
        let c = init_centroids(&data, 3, InitMethod::KMeansPlusPlus, 0);
        assert_eq!(c.rows(), 3);
        for i in 0..3 {
            assert_eq!(c.get(i, 0), 2.0);
        }
    }

    #[test]
    fn k_equals_n_is_allowed() {
        let data = toy_data();
        let c = init_centroids(&data, 30, InitMethod::Forgy, 0);
        assert_eq!(c.rows(), 30);
    }

    #[test]
    #[should_panic(expected = "exceeds sample count")]
    fn k_above_n_rejected() {
        let data = toy_data();
        let _ = init_centroids(&data, 31, InitMethod::Forgy, 0);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        let data = toy_data();
        let _ = init_centroids(&data, 0, InitMethod::Forgy, 0);
    }
}
