//! Serialization for the core model types, behind the `serde` cargo
//! feature. Matrices travel as `(rows, cols, elements…)` with elements in
//! their native width (`f32` → 4 bytes, `f64` → 8), so an artifact's size
//! matches its in-memory footprint and precision is never silently widened.

use crate::matrix::Matrix;
use crate::preprocess::ColumnStats;
use crate::scalar::Scalar;
use serde::{DecodeError, Deserialize, Serialize};

impl<S: Scalar + Serialize + Deserialize> Serialize for Matrix<S> {
    fn serialize(&self, out: &mut Vec<u8>) {
        self.rows().serialize(out);
        self.cols().serialize(out);
        for v in self.as_slice() {
            v.serialize(out);
        }
    }
}

impl<S: Scalar + Serialize + Deserialize> Deserialize for Matrix<S> {
    fn deserialize(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let rows = usize::deserialize(input)?;
        let cols = usize::deserialize(input)?;
        let len = rows
            .checked_mul(cols)
            .ok_or(DecodeError::Invalid("matrix shape overflow"))?;
        // Guard against hostile shapes before allocating: every element
        // needs at least S::BYTES bytes of remaining input.
        if input.len() < len.saturating_mul(S::BYTES) {
            return Err(DecodeError::UnexpectedEof {
                needed: len * S::BYTES,
                remaining: input.len(),
            });
        }
        let mut data = Vec::with_capacity(len);
        for _ in 0..len {
            data.push(S::deserialize(input)?);
        }
        Ok(Matrix::from_vec(rows, cols, data))
    }
}

impl Serialize for ColumnStats {
    fn serialize(&self, out: &mut Vec<u8>) {
        self.mean.serialize(out);
        self.std_dev.serialize(out);
        self.min.serialize(out);
        self.max.serialize(out);
    }
}

impl Deserialize for ColumnStats {
    fn deserialize(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let mean = Vec::<f64>::deserialize(input)?;
        let std_dev = Vec::<f64>::deserialize(input)?;
        let min = Vec::<f64>::deserialize(input)?;
        let max = Vec::<f64>::deserialize(input)?;
        if std_dev.len() != mean.len() || min.len() != mean.len() || max.len() != mean.len() {
            return Err(DecodeError::Invalid("ragged column stats"));
        }
        Ok(ColumnStats {
            mean,
            std_dev,
            min,
            max,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Serialize + Deserialize>(value: &T) -> T {
        let mut bytes = Vec::new();
        value.serialize(&mut bytes);
        let mut cursor = bytes.as_slice();
        let back = T::deserialize(&mut cursor).expect("decode");
        assert!(cursor.is_empty(), "trailing bytes");
        back
    }

    #[test]
    fn matrix_f64_round_trip() {
        let m = Matrix::from_rows(&[&[1.0f64, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(round_trip(&m), m);
    }

    #[test]
    fn matrix_f32_is_compact() {
        let m = Matrix::<f32>::zeros(4, 8);
        let mut bytes = Vec::new();
        m.serialize(&mut bytes);
        // 2 × u64 header + 32 × 4-byte elements.
        assert_eq!(bytes.len(), 16 + 32 * 4);
        assert_eq!(round_trip(&m), m);
    }

    #[test]
    fn column_stats_round_trip() {
        let m = Matrix::from_rows(&[&[1.0f64, -3.0], &[5.0, 9.0]]);
        let stats = ColumnStats::compute(&m);
        assert_eq!(round_trip(&stats), stats);
    }

    #[test]
    fn hostile_matrix_shape_is_rejected_without_allocation() {
        let mut bytes = Vec::new();
        (u64::MAX / 2).serialize(&mut bytes);
        (u64::MAX / 2).serialize(&mut bytes);
        let mut cursor = bytes.as_slice();
        assert!(Matrix::<f64>::deserialize(&mut cursor).is_err());
    }

    #[test]
    fn ragged_stats_are_rejected() {
        let stats = ColumnStats {
            mean: vec![0.0, 0.0],
            std_dev: vec![1.0],
            min: vec![0.0, 0.0],
            max: vec![0.0, 0.0],
        };
        let mut bytes = Vec::new();
        stats.serialize(&mut bytes);
        let mut cursor = bytes.as_slice();
        assert!(ColumnStats::deserialize(&mut cursor).is_err());
    }
}
