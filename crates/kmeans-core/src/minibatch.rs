//! Mini-batch k-means (Sculley 2010; the paper cites the nested mini-batch
//! refinement of Newling & Fleuret as related work): per-centroid learning
//! rates over random batches. Not exact like Lloyd — it's the standard
//! cheap approximation for web-scale data, and the streaming executor in
//! `hier-kmeans` uses the same update rule for out-of-core sources.

use crate::assign::{AssignPlanner, LDM_BYTES_DEFAULT};
use crate::bounds::{centroid_drifts, BoundState, BoundsMode, BoundsScratch};
use crate::lloyd::{KMeansConfig, KMeansError, KMeansResult};
use crate::matrix::Matrix;
use crate::scalar::Scalar;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Mini-batch configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MiniBatchConfig {
    /// Samples per batch.
    pub batch: usize,
    /// Number of batches to process.
    pub batches: usize,
    /// RNG seed for batch sampling.
    pub seed: u64,
}

impl Default for MiniBatchConfig {
    fn default() -> Self {
        MiniBatchConfig {
            batch: 256,
            batches: 100,
            seed: 0,
        }
    }
}

/// Run mini-batch k-means from explicit initial centroids.
///
/// Each batch: assign its samples to the nearest centroid, then move each
/// touched centroid toward the batch members with a per-centroid learning
/// rate `1/count_j` (`count_j` = lifetime assignment count) — the standard
/// Sculley update, which converges like a decaying stochastic gradient.
pub fn run_from<S: Scalar>(
    data: &Matrix<S>,
    init: Matrix<S>,
    config: &MiniBatchConfig,
    k_config: &KMeansConfig,
) -> Result<KMeansResult<S>, KMeansError> {
    let n = data.rows();
    let d = data.cols();
    let k = k_config.k;
    if n == 0 {
        return Err(KMeansError::EmptyDataset);
    }
    if k == 0 {
        return Err(KMeansError::ZeroK);
    }
    if k > n {
        return Err(KMeansError::KExceedsN { k, n });
    }
    if init.rows() != k || init.cols() != d {
        return Err(KMeansError::CentroidShape {
            expected_k: k,
            expected_d: d,
            got_rows: init.rows(),
            got_cols: init.cols(),
        });
    }
    assert!(config.batch > 0, "batch size must be positive");

    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut centroids = init;
    let mut lifetime = vec![0u64; k];
    let mut indices: Vec<usize> = (0..n).collect();
    let mut gathered = Matrix::<S>::zeros(config.batch.min(n), d);
    let mut assignments: Vec<(u32, S)> = Vec::with_capacity(config.batch);
    // A batch only moves the centroids it actually hit, so the planner
    // refreshes norms (and gemm panels) for exactly those rows — the rest
    // of the plan carries over from the previous batch untouched.
    let mut planner = AssignPlanner::new(k_config.kernel, LDM_BYTES_DEFAULT);
    let mut changed = vec![false; k];
    // Bounded assign with lazy per-row seeding: a row's first appearance
    // in any batch seeds its bounds, later appearances filter. Engaged
    // from the start — there is no moved-fraction signal to wait for, and
    // the per-row validity flags make the warm-up self-limiting.
    let mut bound_state: Option<BoundState<S>> = match k_config.bounds.resolve_local(k) {
        BoundsMode::None => None,
        mode => {
            let mut st = BoundState::new(mode, n, k, d);
            st.engage();
            Some(st)
        }
    };
    let mut bscratch = BoundsScratch::default();
    let mut snapshot = Matrix::<S>::zeros(0, 0);
    let mut drifts: Vec<f64> = Vec::new();

    for _ in 0..config.batches {
        indices.shuffle(&mut rng);
        let batch = &indices[..config.batch.min(n)];
        // Assign the whole batch against the frozen centroids first (the
        // two-phase structure keeps the update order-independent). The
        // batch rows are gathered into contiguous storage so the tiled
        // kernel gets real sample tiles to block over.
        for (row, &i) in batch.iter().enumerate() {
            gathered.row_mut(row).copy_from_slice(data.row(i));
        }
        let plan = planner.plan_with_changed(&centroids, &changed);
        assignments.clear();
        if let Some(st) = &mut bound_state {
            st.assign_mapped(
                &plan,
                &gathered,
                batch,
                &centroids,
                &mut assignments,
                &mut bscratch,
            );
            snapshot = centroids.clone();
        } else {
            plan.assign_batch_into(
                &gathered,
                0..batch.len(),
                &centroids,
                0..k,
                0,
                &mut assignments,
            );
        }
        changed.iter_mut().for_each(|v| *v = false);
        for (&i, &(j, _)) in batch.iter().zip(&assignments) {
            let j = j as usize;
            changed[j] = true;
            lifetime[j] += 1;
            let eta = S::ONE / S::from_usize(lifetime[j] as usize);
            let one_minus = S::ONE - eta;
            let row = data.row(i);
            let c = centroids.row_mut(j);
            for (cv, xv) in c.iter_mut().zip(row) {
                *cv = *cv * one_minus + *xv * eta;
            }
        }
        if let Some(st) = &mut bound_state {
            centroid_drifts(&snapshot, &centroids, &mut drifts);
            st.loosen(&drifts);
        }
    }

    let mut labels = vec![0u32; n];
    let objective = crate::lloyd::assign_step(data, &centroids, &mut labels) / n as f64;
    Ok(KMeansResult {
        centroids,
        labels,
        iterations: config.batches,
        objective,
        converged: true,
        bounds: bound_state.map(|s| s.stats).unwrap_or_default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{init_centroids, InitMethod};
    use crate::lloyd::Lloyd;
    use rand::Rng;

    fn blobs(n: usize, d: usize, k: usize, seed: u64) -> Matrix<f64> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let centers: Vec<Vec<f64>> = (0..k)
            .map(|_| (0..d).map(|_| rng.gen_range(-30.0..30.0)).collect())
            .collect();
        let mut data = Vec::with_capacity(n * d);
        for i in 0..n {
            data.extend(centers[i % k].iter().map(|v| v + rng.gen_range(-0.5..0.5)));
        }
        Matrix::from_vec(n, d, data)
    }

    #[test]
    fn approaches_lloyd_quality_on_separated_blobs() {
        let data = blobs(2_000, 8, 5, 3);
        let init = init_centroids(&data, 5, InitMethod::KMeansPlusPlus, 3);
        let lloyd = Lloyd::run_from(
            &data,
            init.clone(),
            &KMeansConfig::new(5).with_max_iters(50),
        )
        .unwrap();
        let mb = run_from(
            &data,
            init,
            &MiniBatchConfig {
                batch: 200,
                batches: 150,
                seed: 1,
            },
            &KMeansConfig::new(5),
        )
        .unwrap();
        // Within 10% of the exact objective on easy data.
        assert!(
            mb.objective < lloyd.objective * 1.1 + 0.05,
            "minibatch {} vs lloyd {}",
            mb.objective,
            lloyd.objective
        );
    }

    #[test]
    fn is_deterministic_per_seed() {
        let data = blobs(500, 4, 3, 7);
        let init = init_centroids(&data, 3, InitMethod::Forgy, 7);
        let cfg = MiniBatchConfig {
            batch: 64,
            batches: 20,
            seed: 9,
        };
        let a = run_from(&data, init.clone(), &cfg, &KMeansConfig::new(3)).unwrap();
        let b = run_from(&data, init, &cfg, &KMeansConfig::new(3)).unwrap();
        assert_eq!(a.centroids, b.centroids);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn kernels_agree_on_separated_blobs() {
        use crate::assign::AssignKernel;
        let data = blobs(500, 4, 3, 7);
        let init = init_centroids(&data, 3, InitMethod::Forgy, 7);
        let cfg = MiniBatchConfig {
            batch: 64,
            batches: 20,
            seed: 9,
        };
        let scalar = run_from(&data, init.clone(), &cfg, &KMeansConfig::new(3)).unwrap();
        for kernel in [AssignKernel::Expanded, AssignKernel::Tiled] {
            let cfg_k = KMeansConfig::new(3).with_kernel(kernel);
            let r = run_from(&data, init.clone(), &cfg, &cfg_k).unwrap();
            assert_eq!(r.labels, scalar.labels, "{kernel}");
        }
    }

    #[test]
    fn bounded_batches_match_unbounded_bitwise() {
        use crate::assign::AssignKernel;
        use crate::bounds::BoundsMode;
        let data = blobs(600, 5, 8, 11);
        let init = init_centroids(&data, 8, InitMethod::Forgy, 11);
        let cfg = MiniBatchConfig {
            batch: 128,
            batches: 40,
            seed: 4,
        };
        for kernel in AssignKernel::ALL {
            let base = KMeansConfig::new(8).with_kernel(kernel);
            let reference = run_from(&data, init.clone(), &cfg, &base).unwrap();
            for bounds in [BoundsMode::Hamerly, BoundsMode::Yinyang, BoundsMode::Auto] {
                let r = run_from(&data, init.clone(), &cfg, &base.with_bounds(bounds)).unwrap();
                assert_eq!(r.labels, reference.labels, "{kernel}/{bounds}");
                for j in 0..8 {
                    assert!(
                        r.centroids
                            .row(j)
                            .iter()
                            .zip(reference.centroids.row(j))
                            .all(|(a, b)| a.to_bits() == b.to_bits()),
                        "{kernel}/{bounds}: centroid {j} diverged"
                    );
                }
                assert!(r.bounds.lloyd_equivalent > 0, "{kernel}/{bounds}: no stats");
            }
        }
    }

    #[test]
    fn batch_larger_than_n_is_clamped() {
        let data = blobs(50, 3, 2, 5);
        let init = init_centroids(&data, 2, InitMethod::Forgy, 5);
        let cfg = MiniBatchConfig {
            batch: 10_000,
            batches: 10,
            seed: 0,
        };
        let r = run_from(&data, init, &cfg, &KMeansConfig::new(2)).unwrap();
        assert!(r.objective.is_finite());
    }

    #[test]
    fn untouched_centroids_stay_put() {
        // A far-away centroid never assigned keeps its initial position.
        let data = Matrix::from_rows(&[&[0.0f64], &[1.0], &[0.5], &[0.2]]);
        let init = Matrix::from_rows(&[&[0.4f64], &[1_000.0]]);
        let cfg = MiniBatchConfig {
            batch: 4,
            batches: 5,
            seed: 2,
        };
        let r = run_from(&data, init, &cfg, &KMeansConfig::new(2)).unwrap();
        assert_eq!(r.centroids.get(1, 0), 1_000.0);
    }

    #[test]
    fn validation() {
        let data = blobs(10, 2, 2, 1);
        let init = init_centroids(&data, 2, InitMethod::Forgy, 1);
        assert!(run_from(
            &Matrix::<f64>::zeros(0, 2),
            init.clone(),
            &MiniBatchConfig::default(),
            &KMeansConfig::new(2)
        )
        .is_err());
        assert!(run_from(
            &data,
            Matrix::zeros(3, 2),
            &MiniBatchConfig::default(),
            &KMeansConfig::new(2)
        )
        .is_err());
    }
}
