//! Precision abstraction: the whole stack is generic over `f32`/`f64`.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A floating-point element type usable for samples, centroids and
/// accumulators.
///
/// The trait is deliberately small — just what the kernels need — so adding
/// a future `f16`-style type only requires these conversions and ops.
pub trait Scalar:
    Copy
    + Send
    + Sync
    + PartialOrd
    + Debug
    + Display
    + Default
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + AddAssign
    + Sum
    + 'static
{
    const ZERO: Self;
    const ONE: Self;
    /// Size in bytes (drives LDM budget arithmetic).
    const BYTES: usize;

    fn from_f64(v: f64) -> Self;
    fn to_f64(self) -> f64;
    fn from_usize(v: usize) -> Self;
    /// Raw IEEE-754 bits widened to `u64` — the workspace's bitwise-
    /// equality currency (distinguishes `-0.0` from `0.0`, unlike `==`).
    fn bits(self) -> u64;
    /// IEEE `max` (NaN-ignoring is not needed; inputs are finite).
    fn max_s(self, other: Self) -> Self;
    fn sqrt_s(self) -> Self;
    fn is_finite_s(self) -> bool;
}

impl Scalar for f32 {
    const ZERO: f32 = 0.0;
    const ONE: f32 = 1.0;
    const BYTES: usize = 4;

    fn from_f64(v: f64) -> f32 {
        v as f32
    }

    fn to_f64(self) -> f64 {
        self as f64
    }

    fn from_usize(v: usize) -> f32 {
        v as f32
    }

    fn bits(self) -> u64 {
        self.to_bits() as u64
    }

    fn max_s(self, other: f32) -> f32 {
        self.max(other)
    }

    fn sqrt_s(self) -> f32 {
        self.sqrt()
    }

    fn is_finite_s(self) -> bool {
        self.is_finite()
    }
}

impl Scalar for f64 {
    const ZERO: f64 = 0.0;
    const ONE: f64 = 1.0;
    const BYTES: usize = 8;

    fn from_f64(v: f64) -> f64 {
        v
    }

    fn to_f64(self) -> f64 {
        self
    }

    fn from_usize(v: usize) -> f64 {
        v as f64
    }

    fn bits(self) -> u64 {
        self.to_bits()
    }

    fn max_s(self, other: f64) -> f64 {
        self.max(other)
    }

    fn sqrt_s(self) -> f64 {
        self.sqrt()
    }

    fn is_finite_s(self) -> bool {
        self.is_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generic_roundtrip<S: Scalar>() {
        assert_eq!(S::from_f64(2.0).to_f64(), 2.0);
        assert_eq!(S::from_usize(3).to_f64(), 3.0);
        assert_eq!(S::ZERO.to_f64(), 0.0);
        assert_eq!(S::ONE.to_f64(), 1.0);
        assert_eq!(S::from_f64(4.0).sqrt_s().to_f64(), 2.0);
        assert!(S::ONE.is_finite_s());
        assert_eq!(S::ZERO.max_s(S::ONE).to_f64(), 1.0);
        assert_eq!(S::ZERO.bits(), 0);
        assert_ne!(
            S::from_f64(-0.0).bits(),
            0,
            "bits must see the sign of zero"
        );
    }

    #[test]
    fn f32_impl() {
        generic_roundtrip::<f32>();
        assert_eq!(f32::BYTES, 4);
    }

    #[test]
    fn f64_impl() {
        generic_roundtrip::<f64>();
        assert_eq!(f64::BYTES, 8);
    }
}
