//! Clustering quality measures.

use crate::distance::sq_euclidean_unrolled;
use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// The paper's objective `O(C)`: the mean squared distance from each sample
/// to its *nearest* centroid (labels are recomputed, not trusted).
pub fn mean_objective<S: Scalar>(data: &Matrix<S>, centroids: &Matrix<S>) -> f64 {
    assert!(data.rows() > 0, "empty dataset");
    let mut total = 0.0f64;
    for i in 0..data.rows() {
        let (_, d) = crate::distance::argmin_centroid(data.row(i), centroids);
        total += d.to_f64();
    }
    total / data.rows() as f64
}

/// Within-cluster sum of squares under a *given* labelling.
pub fn wcss<S: Scalar>(data: &Matrix<S>, centroids: &Matrix<S>, labels: &[u32]) -> f64 {
    assert_eq!(labels.len(), data.rows());
    let mut total = 0.0f64;
    for (i, &label) in labels.iter().enumerate() {
        let j = label as usize;
        total += sq_euclidean_unrolled(data.row(i), centroids.row(j)).to_f64();
    }
    total
}

/// Count of samples per cluster under a labelling.
pub fn cluster_sizes(labels: &[u32], k: usize) -> Vec<u64> {
    let mut sizes = vec![0u64; k];
    for &l in labels {
        sizes[l as usize] += 1;
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objective_of_perfect_fit_is_zero() {
        let data = Matrix::from_rows(&[&[1.0f64, 0.0], &[0.0, 1.0]]);
        let obj = mean_objective(&data, &data);
        assert_eq!(obj, 0.0);
    }

    #[test]
    fn objective_averages_squared_distances() {
        let data = Matrix::from_rows(&[&[0.0f64], &[4.0]]);
        let centroids = Matrix::from_rows(&[&[1.0f64]]);
        // Distances²: 1 and 9, mean = 5.
        assert_eq!(mean_objective(&data, &centroids), 5.0);
    }

    #[test]
    fn wcss_uses_given_labels_not_nearest() {
        let data = Matrix::from_rows(&[&[0.0f64], &[4.0]]);
        let centroids = Matrix::from_rows(&[&[0.0f64], &[4.0]]);
        // Deliberately wrong labels.
        let bad = wcss(&data, &centroids, &[1, 0]);
        assert_eq!(bad, 32.0);
        let good = wcss(&data, &centroids, &[0, 1]);
        assert_eq!(good, 0.0);
    }

    #[test]
    fn sizes_count_members() {
        assert_eq!(cluster_sizes(&[0, 1, 1, 2, 1], 4), vec![1, 3, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn objective_rejects_empty() {
        let data = Matrix::<f64>::zeros(0, 1);
        let c = Matrix::<f64>::zeros(1, 1);
        let _ = mean_objective(&data, &c);
    }
}
