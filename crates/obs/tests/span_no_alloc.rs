//! Assertion-style allocation tests for the observability hot paths.
//!
//! A counting global allocator wraps `System`; each check warms the path
//! up (first use may intern a name or create a histogram), then asserts
//! that steady-state iterations perform zero heap allocations. This is
//! an integration-test binary so the allocator override cannot leak into
//! other test executables; everything runs inside one `#[test]` so no
//! concurrent test case can pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use swkm_obs::{LocalHists, MetricsRegistry, Span, TraceBuffer, TraceEvent, Tracer};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn assert_no_allocs(label: &str, mut f: impl FnMut()) {
    let before = ALLOCS.load(Ordering::SeqCst);
    f();
    let after = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "{label}: hot path performed {} heap allocation(s)",
        after - before
    );
}

#[test]
fn observability_hot_paths_do_not_allocate() {
    // --- Span: the satellite fix. `Span::enter` used to build
    // `format!("{name}_ns")` per call; interning makes re-entry free.
    let reg = MetricsRegistry::new();
    {
        let _warmup = Span::enter(&reg, "hot_phase");
    }
    assert_no_allocs("Span::enter/drop", || {
        for _ in 0..1000 {
            let _s = Span::enter(&reg, "hot_phase");
        }
    });

    // --- Registry fast paths: repeated recording against existing
    // metrics takes the `get_mut` branch, never `entry(to_string())`.
    reg.counter_add("hot_counter", 1);
    reg.gauge_set("hot_gauge", 0.0);
    assert_no_allocs("MetricsRegistry repeat ops", || {
        for i in 0..1000u64 {
            reg.counter_add("hot_counter", 1);
            reg.gauge_set("hot_gauge", i as f64);
            reg.record("hot_phase_ns", i);
        }
    });

    // --- LocalHists: per-sample recording into an existing local
    // histogram stays allocation-free.
    let mut local = LocalHists::new(&reg);
    local.record("batch_size", 1);
    assert_no_allocs("LocalHists::record", || {
        for i in 0..1000u64 {
            local.record("batch_size", i);
        }
    });
    drop(local);

    // --- TraceBuffer: pushes into a warm ring are fixed-size writes
    // into preallocated storage (this is what makes always-on flight
    // recording cheap).
    let buf = TraceBuffer::new(256);
    let tracer = Tracer::new(std::sync::Arc::new(TraceBuffer::new(256)), "t", 0);
    let ev = TraceEvent {
        ts_ns: 1,
        dur_ns: 1,
        proc: "t",
        track: 0,
        name: "e",
        kind: swkm_obs::EventKind::Complete,
        trace_id: 0,
        arg_name: "",
        arg: 0,
    };
    buf.push(ev); // warm up this thread's shard ticket
    tracer.complete_at("e", 0, 1, 0, "", 0);
    assert_no_allocs("TraceBuffer::push", || {
        for _ in 0..2000 {
            buf.push(ev);
        }
    });
    assert_no_allocs("Tracer::complete/instant", || {
        for _ in 0..1000 {
            let s = tracer.begin();
            tracer.complete("e", s);
            tracer.instant("i");
        }
    });
}
