//! Workspace-wide observability: a unified [`MetricsRegistry`] of named
//! counters, gauges and log₂ histograms, RAII [`Span`] timers, and two
//! exporters ([JSON](export::to_json) and
//! [Prometheus text](export::to_prometheus)).
//!
//! Every layer of the workspace reports into the same vocabulary:
//!
//! - the hierarchical training executors record per-iteration, per-phase
//!   wall times (`train_assign_ns`, `train_update_ns`, `train_reduce_ns`,
//!   `train_exchange_ns`) and per-rank imbalance gauges;
//! - the `msg` collectives account bytes moved and message counts per
//!   collective kind (`comm_allreduce_bytes`, `comm_bcast_messages`, …);
//! - the serving pipeline exposes its request counters and stage latency
//!   histograms through the same registry (no second vocabulary).
//!
//! The registry is deliberately dependency-free: histograms reuse
//! [`sw_des::stats::Histogram`] (fixed power-of-two buckets, lossless
//! merge), and the JSON exporter emits documents with stable key order so
//! runs can be committed as `BENCH_*.json` trajectory points and diffed.
//!
//! # Quick start
//!
//! ```
//! use swkm_obs::{span, MetricsRegistry};
//!
//! let reg = MetricsRegistry::new();
//! reg.counter_add("requests", 3);
//! reg.gauge_set("queue_depth", 7.0);
//! {
//!     let _guard = span!(reg, "assign"); // records into `assign_ns` on drop
//! }
//! assert_eq!(reg.counter("requests"), 3);
//! assert_eq!(reg.histogram("assign_ns").unwrap().count(), 1);
//! let json = swkm_obs::export::to_json(&reg);
//! assert!(json.starts_with('{'));
//! ```
//!
//! # Thread-local fold-in
//!
//! Hot paths should not take the registry lock per sample. Workers keep a
//! [`LocalHists`] scratch pad and fold it into the shared registry once, on
//! drop — mirroring the `StageHists` merge pattern the serving pipeline
//! established (power-of-two buckets make the merge lossless).
//!
//! # Event-level tracing
//!
//! Aggregates answer "how slow"; the [`trace`] module answers "why":
//! a bounded [`TraceBuffer`] ring records epoch-stamped events from every
//! subsystem (training phases per rank, collectives per rank, serving
//! stages per request), [`chrome::to_chrome_json`] exports them for
//! Perfetto/`chrome://tracing`, and a [`FlightRecorder`] dumps the last
//! events when something breaches an SLO or a fault storm hits.

pub mod chrome;
pub mod export;
pub mod flight;
pub mod registry;
pub mod span;
pub mod trace;

pub use flight::{DumpSink, FlightRecorder, MemSink};
pub use registry::{MetricValue, MetricsRegistry};
pub use span::{LocalHists, Span};
pub use trace::{EventKind, TraceBuffer, TraceEvent, TraceSpan, TraceStats, Tracer};

/// Open an RAII timing span against a registry: `span!(reg, "assign")`
/// returns a guard that records its elapsed nanoseconds into the histogram
/// `assign_ns` when dropped.
#[macro_export]
macro_rules! span {
    ($reg:expr, $name:expr) => {
        $crate::Span::enter(&$reg, $name)
    };
}
