//! The metrics registry: a named map of counters, gauges and histograms
//! shared by training, communication and serving code.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use sw_des::stats::Histogram;

/// One metric's current value. Counters are monotone `u64`s, gauges are
/// instantaneous `f64`s, histograms are log₂-bucketed sample distributions
/// (see [`sw_des::stats::Histogram`]).
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(f64),
    Histogram(Histogram),
}

impl MetricValue {
    fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }
}

/// A thread-safe registry of named metrics with a stable (sorted) iteration
/// order. Names are flat strings; the workspace convention is
/// `<subsystem>_<what>_<unit>` (`train_assign_ns`, `comm_allreduce_bytes`,
/// `serve_queue_depth`).
///
/// A name is bound to its metric kind on first use; mixing kinds under one
/// name (e.g. `counter_add` after `gauge_set`) panics, since that is always
/// a programming error and would silently corrupt exports.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<String, MetricValue>>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh registry behind an `Arc`, for sharing across threads.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    fn with_inner<R>(&self, f: impl FnOnce(&mut BTreeMap<String, MetricValue>) -> R) -> R {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        f(&mut inner)
    }

    /// Add `delta` to the counter `name`, creating it at zero if absent.
    /// Only the creating call allocates (the `get_mut` fast path keeps
    /// hot-loop increments allocation-free).
    pub fn counter_add(&self, name: &str, delta: u64) {
        self.with_inner(|m| match m.get_mut(name) {
            Some(MetricValue::Counter(c)) => *c += delta,
            Some(other) => panic!("metric `{name}` is a {}, not a counter", other.kind()),
            None => {
                m.insert(name.to_string(), MetricValue::Counter(delta));
            }
        });
    }

    /// Increment the counter `name` by one.
    pub fn counter_inc(&self, name: &str) {
        self.counter_add(name, 1);
    }

    /// Current value of counter `name`; zero if it was never touched.
    pub fn counter(&self, name: &str) -> u64 {
        self.with_inner(|m| match m.get(name) {
            Some(MetricValue::Counter(c)) => *c,
            Some(other) => panic!("metric `{name}` is a {}, not a counter", other.kind()),
            None => 0,
        })
    }

    /// Set the gauge `name` to `value` (last write wins). Only the
    /// creating call allocates.
    pub fn gauge_set(&self, name: &str, value: f64) {
        self.with_inner(|m| match m.get_mut(name) {
            Some(MetricValue::Gauge(g)) => *g = value,
            Some(other) => panic!("metric `{name}` is a {}, not a gauge", other.kind()),
            None => {
                m.insert(name.to_string(), MetricValue::Gauge(value));
            }
        });
    }

    /// Current value of gauge `name`, if it has been set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.with_inner(|m| match m.get(name) {
            Some(MetricValue::Gauge(g)) => Some(*g),
            Some(other) => panic!("metric `{name}` is a {}, not a gauge", other.kind()),
            None => None,
        })
    }

    /// Record one sample into the histogram `name`, creating it if
    /// absent. Only the creating call allocates.
    pub fn record(&self, name: &str, value: u64) {
        self.with_inner(|m| match m.get_mut(name) {
            Some(MetricValue::Histogram(h)) => h.record(value),
            Some(other) => panic!("metric `{name}` is a {}, not a histogram", other.kind()),
            None => {
                let mut h = Histogram::new();
                h.record(value);
                m.insert(name.to_string(), MetricValue::Histogram(h));
            }
        });
    }

    /// Fold a locally-accumulated histogram into `name` bucket-wise — the
    /// cheap end of the thread-local fold-in pattern (see
    /// [`crate::LocalHists`]). Lossless because buckets are fixed powers of
    /// two.
    pub fn merge_histogram(&self, name: &str, hist: &Histogram) {
        self.with_inner(|m| match m.get_mut(name) {
            Some(MetricValue::Histogram(h)) => h.merge(hist),
            Some(other) => panic!("metric `{name}` is a {}, not a histogram", other.kind()),
            None => {
                m.insert(name.to_string(), MetricValue::Histogram(hist.clone()));
            }
        });
    }

    /// A clone of histogram `name`, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.with_inner(|m| match m.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h.clone()),
            Some(other) => panic!("metric `{name}` is a {}, not a histogram", other.kind()),
            None => None,
        })
    }

    /// A consistent point-in-time copy of every metric, in sorted name
    /// order — the input to both exporters.
    pub fn snapshot(&self) -> BTreeMap<String, MetricValue> {
        self.with_inner(|m| m.clone())
    }

    /// Drop every metric (used between benchmark repetitions).
    pub fn clear(&self) {
        self.with_inner(|m| m.clear());
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.with_inner(|m| m.len())
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counters_gauges_histograms_round_trip() {
        let reg = MetricsRegistry::new();
        reg.counter_inc("hits");
        reg.counter_add("hits", 4);
        assert_eq!(reg.counter("hits"), 5);
        assert_eq!(reg.counter("never_touched"), 0);

        reg.gauge_set("depth", 3.0);
        reg.gauge_set("depth", 7.5);
        assert_eq!(reg.gauge("depth"), Some(7.5));
        assert_eq!(reg.gauge("missing"), None);

        reg.record("lat_ns", 100);
        reg.record("lat_ns", 900);
        let h = reg.histogram("lat_ns").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(reg.len(), 3);
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.gauge_set("x", 1.0);
        reg.counter_add("x", 1);
    }

    #[test]
    fn snapshot_is_sorted_and_detached() {
        let reg = MetricsRegistry::new();
        reg.counter_add("zebra", 1);
        reg.counter_add("alpha", 1);
        let snap = reg.snapshot();
        let names: Vec<_> = snap.keys().cloned().collect();
        assert_eq!(names, vec!["alpha", "zebra"]);
        reg.counter_add("alpha", 10);
        assert_eq!(snap["alpha"], MetricValue::Counter(1));
    }

    #[test]
    fn concurrent_counter_and_histogram_recording() {
        let reg = MetricsRegistry::shared();
        let threads = 8;
        let per_thread = 1_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let reg = Arc::clone(&reg);
                thread::spawn(move || {
                    for i in 0..per_thread {
                        reg.counter_inc("ops");
                        reg.record("vals", t * per_thread + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.counter("ops"), threads * per_thread);
        assert_eq!(reg.histogram("vals").unwrap().count(), threads * per_thread);
    }
}
