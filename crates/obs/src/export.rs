//! Exporters: structured JSON (stable key order, hand-rolled — the
//! workspace has no JSON dependency) and Prometheus text exposition.

use crate::registry::{MetricValue, MetricsRegistry};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use sw_des::stats::Histogram;

/// Escape a string for inclusion in a JSON document.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` as a JSON value. JSON has no NaN/±inf, so non-finite
/// values become `null` rather than producing an unparseable document.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // `{:?}` keeps a decimal point or exponent so the value reads back
        // as a float (`1.0`, not `1`).
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

fn json_histogram(h: &Histogram) -> String {
    let buckets: Vec<String> = h
        .nonzero_buckets()
        .into_iter()
        .map(|(lo, c)| format!("[{lo},{c}]"))
        .collect();
    format!(
        "{{\"count\":{},\"p50\":{},\"p99\":{},\"buckets\":[{}]}}",
        h.count(),
        h.quantile_upper_bound(0.50),
        h.quantile_upper_bound(0.99),
        buckets.join(",")
    )
}

/// Render a snapshot as one JSON document with stable key order:
///
/// ```json
/// {
///   "counters": { "comm_allreduce_bytes": 2160 },
///   "gauges": { "train_wall_s": 0.0123 },
///   "histograms": {
///     "train_assign_ns": { "count": 3, "p50": 1023, "p99": 1023,
///                          "buckets": [[512, 3]] }
///   }
/// }
/// ```
///
/// Keys are sorted within each section, so two exports of the same run are
/// byte-identical and committed `BENCH_*.json` files diff cleanly.
pub fn to_json(registry: &MetricsRegistry) -> String {
    snapshot_to_json(&registry.snapshot())
}

/// [`to_json`] over an already-taken snapshot.
pub fn snapshot_to_json(snapshot: &BTreeMap<String, MetricValue>) -> String {
    let mut counters = Vec::new();
    let mut gauges = Vec::new();
    let mut hists = Vec::new();
    for (name, value) in snapshot {
        let key = escape_json(name);
        match value {
            MetricValue::Counter(c) => counters.push(format!("\"{key}\":{c}")),
            MetricValue::Gauge(g) => gauges.push(format!("\"{key}\":{}", json_f64(*g))),
            MetricValue::Histogram(h) => hists.push(format!("\"{key}\":{}", json_histogram(h))),
        }
    }
    format!(
        "{{\"counters\":{{{}}},\"gauges\":{{{}}},\"histograms\":{{{}}}}}",
        counters.join(","),
        gauges.join(","),
        hists.join(",")
    )
}

/// Sanitise a metric name for Prometheus (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
fn prom_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Render a snapshot in the Prometheus text exposition format.
///
/// Histograms emit cumulative `_bucket{le="…"}` series plus `_count`;
/// `_sum` is omitted because the log₂ buckets do not retain exact sums.
pub fn to_prometheus(registry: &MetricsRegistry) -> String {
    snapshot_to_prometheus(&registry.snapshot())
}

/// [`to_prometheus`] over an already-taken snapshot.
pub fn snapshot_to_prometheus(snapshot: &BTreeMap<String, MetricValue>) -> String {
    let mut out = String::new();
    for (name, value) in snapshot {
        let name = prom_name(name);
        match value {
            MetricValue::Counter(c) => {
                let _ = writeln!(out, "# TYPE {name} counter\n{name} {c}");
            }
            MetricValue::Gauge(g) => {
                let _ = writeln!(out, "# TYPE {name} gauge\n{name} {g}");
            }
            MetricValue::Histogram(h) => {
                let _ = writeln!(out, "# TYPE {name} histogram");
                let mut cumulative = 0u64;
                for (lo, count) in h.nonzero_buckets() {
                    cumulative += count;
                    let le = Histogram::bucket_upper_bound(lo);
                    let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
                }
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
                let _ = writeln!(out, "{name}_count {}", h.count());
            }
        }
    }
    out
}

/// Render slow-request exemplars as Prometheus text: one labeled gauge
/// sample per exemplar, `metric{trace_id="…"} value`. Exemplars live
/// outside the [`MetricsRegistry`] (they carry labels, which the
/// registry's flat vocabulary deliberately does not), so appending this
/// to [`to_prometheus`] output never perturbs the JSON export — the
/// byte-identical re-export guarantee is untouched.
pub fn prom_exemplars(metric: &str, exemplars: &[(u64, u64)]) -> String {
    if exemplars.is_empty() {
        return String::new();
    }
    let name = prom_name(metric);
    let mut out = String::new();
    let _ = writeln!(out, "# TYPE {name} gauge");
    for &(value, trace_id) in exemplars {
        let _ = writeln!(out, "{name}{{trace_id=\"{trace_id}\"}} {value}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        reg.counter_add("comm_allreduce_bytes", 2160);
        reg.gauge_set("train_wall_s", 0.5);
        reg.record("train_assign_ns", 700);
        reg.record("train_assign_ns", 800);
        reg
    }

    #[test]
    fn json_has_stable_shape() {
        let reg = sample_registry();
        let json = to_json(&reg);
        assert_eq!(
            json,
            "{\"counters\":{\"comm_allreduce_bytes\":2160},\
             \"gauges\":{\"train_wall_s\":0.5},\
             \"histograms\":{\"train_assign_ns\":{\"count\":2,\"p50\":1023,\
             \"p99\":1023,\"buckets\":[[512,2]]}}}"
        );
        // Re-export is byte-identical (stable ordering).
        assert_eq!(json, to_json(&reg));
    }

    #[test]
    fn json_handles_non_finite_gauges_and_empty_registry() {
        let reg = MetricsRegistry::new();
        reg.gauge_set("bad", f64::NAN);
        assert!(to_json(&reg).contains("\"bad\":null"));
        assert_eq!(
            to_json(&MetricsRegistry::new()),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}"
        );
    }

    #[test]
    fn json_floats_read_back_as_floats() {
        assert_eq!(json_f64(1.0), "1.0");
        assert_eq!(json_f64(0.125), "0.125");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }

    #[test]
    fn prometheus_emits_cumulative_buckets() {
        let reg = sample_registry();
        let text = to_prometheus(&reg);
        assert!(text.contains("# TYPE comm_allreduce_bytes counter"));
        assert!(text.contains("comm_allreduce_bytes 2160"));
        assert!(text.contains("# TYPE train_wall_s gauge"));
        assert!(text.contains("train_assign_ns_bucket{le=\"1023\"} 2"));
        assert!(text.contains("train_assign_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("train_assign_ns_count 2"));
    }

    #[test]
    fn prom_name_sanitises() {
        assert_eq!(prom_name("a.b-c/d"), "a_b_c_d");
        assert_eq!(prom_name("9lives"), "_9lives");
    }

    #[test]
    fn exemplars_append_without_touching_json() {
        let reg = sample_registry();
        let json_before = to_json(&reg);
        let exemplars = vec![(1_500_000u64, 42u64), (900_000, 7)];
        let text = format!(
            "{}{}",
            to_prometheus(&reg),
            prom_exemplars("serve_latency_exemplar", &exemplars)
        );
        assert!(text.contains("# TYPE serve_latency_exemplar gauge"));
        assert!(text.contains("serve_latency_exemplar{trace_id=\"42\"} 1500000"));
        assert!(text.contains("serve_latency_exemplar{trace_id=\"7\"} 900000"));
        // Exemplars live outside the registry: the JSON document is
        // byte-identical before and after rendering them.
        assert_eq!(json_before, to_json(&reg));
        assert_eq!(prom_exemplars("x", &[]), "");
    }

    #[test]
    fn escape_json_escapes_controls() {
        assert_eq!(escape_json("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
