//! Triggered flight recorder: the trace ring is always recording
//! cheaply, and a trigger (SLO breach, fault storm, every shard down, a
//! model hot-swap) atomically dumps the last events as a Chrome-trace
//! JSON file through a [`DumpSink`].
//!
//! `swkm-obs` sits below the storage crate, so the recorder writes
//! through its own one-method sink trait; `swkm-store` adapts its `Vfs`
//! implementations onto it (atomic temp-file + rename semantics come for
//! free there).

use crate::trace::TraceBuffer;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Where flight dumps land. Implementations must make the write atomic:
/// a reader never observes a partially-written dump.
pub trait DumpSink: Send + Sync {
    fn write_atomic(&self, name: &str, bytes: &[u8]) -> Result<(), String>;
}

/// In-memory sink for tests and embedded use.
#[derive(Debug, Default)]
pub struct MemSink {
    files: Mutex<BTreeMap<String, Vec<u8>>>,
}

impl MemSink {
    pub fn new() -> Self {
        Self::default()
    }

    /// Names of every dump written so far, sorted.
    pub fn names(&self) -> Vec<String> {
        let files = self.files.lock().unwrap_or_else(|e| e.into_inner());
        files.keys().cloned().collect()
    }

    pub fn get(&self, name: &str) -> Option<Vec<u8>> {
        let files = self.files.lock().unwrap_or_else(|e| e.into_inner());
        files.get(name).cloned()
    }
}

impl DumpSink for MemSink {
    fn write_atomic(&self, name: &str, bytes: &[u8]) -> Result<(), String> {
        let mut files = self.files.lock().unwrap_or_else(|e| e.into_inner());
        files.insert(name.to_string(), bytes.to_vec());
        Ok(())
    }
}

impl<S: DumpSink + ?Sized> DumpSink for Arc<S> {
    fn write_atomic(&self, name: &str, bytes: &[u8]) -> Result<(), String> {
        (**self).write_atomic(name, bytes)
    }
}

/// Turn a trigger reason into a filename-safe slug.
fn slug(reason: &str) -> String {
    let mut out: String = reason
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect();
    out.truncate(48);
    if out.is_empty() {
        out.push_str("trigger");
    }
    out
}

/// The recorder itself: holds the always-on ring and dumps on demand,
/// rate-limited to `max_dumps` over its lifetime so a trigger storm
/// (e.g. one failover per batch while a shard is down) cannot fill the
/// disk with near-identical snapshots.
pub struct FlightRecorder {
    buffer: Arc<TraceBuffer>,
    sink: Box<dyn DumpSink>,
    max_dumps: u64,
    /// Keep only the newest M events of the snapshot (the "last M
    /// events" window).
    last_events: usize,
    dumps: AtomicU64,
    triggers: AtomicU64,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("max_dumps", &self.max_dumps)
            .field("last_events", &self.last_events)
            .field("dumps", &self.dumps.load(Ordering::Relaxed))
            .field("triggers", &self.triggers.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl FlightRecorder {
    pub fn new(
        buffer: Arc<TraceBuffer>,
        sink: Box<dyn DumpSink>,
        max_dumps: u64,
        last_events: usize,
    ) -> Self {
        FlightRecorder {
            buffer,
            sink,
            max_dumps,
            last_events: last_events.max(1),
            dumps: AtomicU64::new(0),
            triggers: AtomicU64::new(0),
        }
    }

    pub fn buffer(&self) -> &Arc<TraceBuffer> {
        &self.buffer
    }

    /// Fire the recorder. Returns the dump's filename
    /// (`flight-<seq>-<reason>.json`) if a dump was written; `None` once
    /// the dump budget is spent or if the sink failed. Always cheap when
    /// rate-limited: the snapshot is only taken for real dumps.
    pub fn trigger(&self, reason: &str) -> Option<String> {
        self.triggers.fetch_add(1, Ordering::Relaxed);
        // Claim a dump slot without burning budget on over-limit calls.
        let mut seq = self.dumps.load(Ordering::Relaxed);
        loop {
            if seq >= self.max_dumps {
                return None;
            }
            match self.dumps.compare_exchange_weak(
                seq,
                seq + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(cur) => seq = cur,
            }
        }
        let mut events = self.buffer.snapshot();
        if events.len() > self.last_events {
            events.drain(..events.len() - self.last_events);
        }
        let dropped = self.buffer.stats().dropped;
        let json = crate::chrome::to_chrome_json(&events, dropped);
        let name = format!("flight-{seq}-{}.json", slug(reason));
        match self.sink.write_atomic(&name, json.as_bytes()) {
            Ok(()) => Some(name),
            Err(_) => None,
        }
    }

    /// Dumps actually written.
    pub fn dumps(&self) -> u64 {
        self.dumps.load(Ordering::Relaxed)
    }

    /// Triggers fired, including rate-limited ones.
    pub fn triggers(&self) -> u64 {
        self.triggers.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Tracer;

    #[test]
    fn trigger_dumps_last_events_and_rate_limits() {
        let buf = TraceBuffer::shared(256);
        let t = Tracer::new(Arc::clone(&buf), "serve", 0);
        for _ in 0..10 {
            let s = t.begin();
            t.complete("work", s);
        }
        let sink = Arc::new(MemSink::new());
        let rec = FlightRecorder::new(
            Arc::clone(&buf),
            Box::new(Arc::clone(&sink)),
            2,
            4, // keep only the newest 4 events
        );
        let first = rec.trigger("all shards down").unwrap();
        assert_eq!(first, "flight-0-all_shards_down.json");
        let body = String::from_utf8(sink.get(&first).unwrap()).unwrap();
        assert_eq!(body.matches("\"ph\":\"X\"").count(), 4);
        assert!(rec.trigger("slo-breach").is_some());
        // Budget spent: further triggers are counted but write nothing.
        assert!(rec.trigger("slo-breach").is_none());
        assert_eq!(rec.dumps(), 2);
        assert_eq!(rec.triggers(), 3);
        assert_eq!(sink.names().len(), 2);
    }

    #[test]
    fn slug_sanitises_reasons() {
        assert_eq!(slug("All Shards/Down!"), "all_shards_down_");
        assert_eq!(slug(""), "trigger");
    }

    #[test]
    fn debug_does_not_require_sink_debug() {
        let buf = TraceBuffer::shared(8);
        let rec = FlightRecorder::new(buf, Box::new(MemSink::new()), 1, 8);
        assert!(format!("{rec:?}").contains("FlightRecorder"));
    }
}
