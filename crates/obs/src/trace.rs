//! Event-level tracing: a bounded, sharded ring buffer of fixed-size
//! [`TraceEvent`]s plus the cheap [`Tracer`] writer handle.
//!
//! The buffer is "lock-free-ish": writers never contend in practice
//! because each thread is pinned to one shard (a short-critical-section
//! mutex around a preallocated ring), pushes never allocate, and a
//! disabled buffer costs one relaxed atomic load. When a shard's ring is
//! full the oldest event is overwritten and counted as dropped, so the
//! conservation invariant `retained + dropped == pushed` always holds —
//! the flight recorder relies on the ring always recording cheaply.
//!
//! Timestamps are nanoseconds since the buffer's construction epoch
//! ([`TraceBuffer::now_ns`]); every writer of one buffer therefore shares
//! a clock and the exported timeline lines up across ranks, workers and
//! the serving pipeline.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// How an event renders on the timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span with a start and a duration (Chrome `"X"`).
    Complete,
    /// A point-in-time marker (Chrome `"i"`), e.g. a retry or a fault.
    Instant,
}

/// One fixed-size trace event. Names are `&'static str` so recording
/// never allocates; the optional numeric argument (`arg_name`/`arg`)
/// carries small payloads like an iteration index, a shard id or a batch
/// size. `trace_id` links serving events belonging to one request
/// (`0` means "not request-scoped").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the buffer epoch.
    pub ts_ns: u64,
    /// Span duration (zero for instants).
    pub dur_ns: u64,
    /// Process-level grouping in the exported view ("train", "comm",
    /// "serve").
    pub proc: &'static str,
    /// Thread-level track within the process: SPMD rank, worker index.
    pub track: u32,
    pub name: &'static str,
    pub kind: EventKind,
    /// Request correlation id; `0` when the event is not per-request.
    pub trace_id: u64,
    /// Name of the numeric argument; `""` means no argument.
    pub arg_name: &'static str,
    pub arg: u64,
}

#[derive(Debug)]
struct Shard {
    ring: Vec<TraceEvent>,
    /// Next overwrite position once the ring is full.
    head: usize,
    pushed: u64,
    dropped: u64,
}

impl Shard {
    /// Storage is preallocated so pushes never reallocate — the push
    /// path must stay allocation-free.
    fn with_capacity(cap: usize) -> Self {
        Shard {
            ring: Vec::with_capacity(cap),
            head: 0,
            pushed: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, ev: TraceEvent, cap: usize) {
        self.pushed += 1;
        if self.ring.len() < cap {
            self.ring.push(ev);
        } else {
            self.ring[self.head] = ev;
            self.head = (self.head + 1) % cap;
            self.dropped += 1;
        }
    }

    /// Events oldest-first (ring order).
    fn in_order(&self, out: &mut Vec<TraceEvent>) {
        out.extend_from_slice(&self.ring[self.head..]);
        out.extend_from_slice(&self.ring[..self.head]);
    }
}

/// Conservation accounting for a buffer: every pushed event is either
/// still retained or was dropped by ring overwrite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceStats {
    pub pushed: u64,
    pub dropped: u64,
    pub retained: u64,
}

/// The bounded trace ring. Create one per process (fit run or serve
/// bench), hand `Arc` clones to every subsystem, and export a snapshot
/// with [`crate::chrome::to_chrome_json`] at the end — or let a
/// [`crate::FlightRecorder`] dump it when something goes wrong.
#[derive(Debug)]
pub struct TraceBuffer {
    shards: Vec<Mutex<Shard>>,
    shard_cap: usize,
    epoch: Instant,
    enabled: AtomicBool,
    /// Serve-side request sampling: trace 1-in-N admitted requests.
    /// Training phases ignore this (always-on).
    sample_every: u64,
    next_id: AtomicU64,
}

/// Identity equality: a buffer is a live recording device, not a value.
/// This is what lets configuration structs that carry an
/// `Option<Arc<TraceBuffer>>` keep `derive(PartialEq)`.
impl PartialEq for TraceBuffer {
    fn eq(&self, other: &Self) -> bool {
        std::ptr::eq(self, other)
    }
}

const SHARDS: usize = 8;

impl TraceBuffer {
    /// A buffer retaining up to `capacity` events (rounded up to the
    /// shard count), recording every event offered to it.
    pub fn new(capacity: usize) -> Self {
        Self::with_sampling(capacity, 1)
    }

    /// A buffer that additionally samples request-scoped tracing 1-in-
    /// `sample_every` (see [`TraceBuffer::sample_hit`]). `0` and `1` both
    /// mean "every request".
    pub fn with_sampling(capacity: usize, sample_every: u64) -> Self {
        let shard_cap = capacity.div_ceil(SHARDS).max(1);
        TraceBuffer {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(Shard::with_capacity(shard_cap)))
                .collect(),
            shard_cap,
            epoch: Instant::now(),
            enabled: AtomicBool::new(true),
            sample_every: sample_every.max(1),
            next_id: AtomicU64::new(0),
        }
    }

    /// A fresh buffer behind an `Arc`, for sharing across threads.
    pub fn shared(capacity: usize) -> Arc<Self> {
        Arc::new(Self::new(capacity))
    }

    /// Nanoseconds since this buffer's construction — the shared clock
    /// every event timestamp is expressed in.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Total events this buffer can retain.
    pub fn capacity(&self) -> usize {
        self.shard_cap * self.shards.len()
    }

    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Flip recording on/off. A disabled buffer drops pushes after one
    /// relaxed atomic load — the cost of "tracing compiled in but off".
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Allocate a nonzero request trace id.
    pub fn next_trace_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Whether a request with this id should carry a full trace
    /// (1-in-`sample_every` by id).
    pub fn sample_hit(&self, trace_id: u64) -> bool {
        self.sample_every <= 1 || trace_id.is_multiple_of(self.sample_every)
    }

    fn shard_index(&self) -> usize {
        use std::cell::Cell;
        // Each thread draws one ticket, ever; `Cell<usize>` has no
        // destructor so first access does not allocate.
        thread_local! {
            static TICKET: Cell<usize> = const { Cell::new(usize::MAX) };
        }
        static NEXT_TICKET: AtomicUsize = AtomicUsize::new(0);
        TICKET.with(|c| {
            let mut t = c.get();
            if t == usize::MAX {
                t = NEXT_TICKET.fetch_add(1, Ordering::Relaxed);
                c.set(t);
            }
            t % self.shards.len()
        })
    }

    /// Record one event. Never allocates; never blocks beyond the pinned
    /// shard's short critical section.
    pub fn push(&self, ev: TraceEvent) {
        if !self.enabled() {
            return;
        }
        let idx = self.shard_index();
        let mut shard = self.shards[idx].lock().unwrap_or_else(|e| e.into_inner());
        shard.push(ev, self.shard_cap);
    }

    /// A consistent copy of the retained events, stably sorted by
    /// timestamp (so each thread's events keep their push order).
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().unwrap_or_else(|e| e.into_inner());
            shard.in_order(&mut out);
        }
        out.sort_by_key(|e| e.ts_ns);
        out
    }

    /// Conservation accounting across all shards.
    pub fn stats(&self) -> TraceStats {
        let mut s = TraceStats::default();
        for shard in &self.shards {
            let shard = shard.lock().unwrap_or_else(|e| e.into_inner());
            s.pushed += shard.pushed;
            s.dropped += shard.dropped;
            s.retained += shard.ring.len() as u64;
        }
        s
    }
}

/// A cheap, cloneable writer handle binding a buffer to one `(proc,
/// track)` timeline — one per SPMD rank, serving worker, or pipeline
/// role. All methods are no-ops when the buffer is disabled.
#[derive(Debug, Clone)]
pub struct Tracer {
    buf: Arc<TraceBuffer>,
    proc: &'static str,
    track: u32,
}

impl Tracer {
    pub fn new(buf: Arc<TraceBuffer>, proc: &'static str, track: u32) -> Self {
        Tracer { buf, proc, track }
    }

    /// The same buffer on a different track (e.g. per worker thread).
    pub fn on_track(&self, track: u32) -> Tracer {
        Tracer {
            buf: Arc::clone(&self.buf),
            proc: self.proc,
            track,
        }
    }

    pub fn buffer(&self) -> &Arc<TraceBuffer> {
        &self.buf
    }

    /// Current timestamp on the buffer clock — pair with
    /// [`Tracer::complete`] to bracket a span.
    pub fn begin(&self) -> u64 {
        self.buf.now_ns()
    }

    /// Record the span `[start_ns, now]` under `name`.
    pub fn complete(&self, name: &'static str, start_ns: u64) {
        self.complete_full(name, start_ns, 0, "", 0);
    }

    /// [`Tracer::complete`] with a request id and a numeric argument.
    pub fn complete_full(
        &self,
        name: &'static str,
        start_ns: u64,
        trace_id: u64,
        arg_name: &'static str,
        arg: u64,
    ) {
        let dur = self.buf.now_ns().saturating_sub(start_ns);
        self.complete_at(name, start_ns, dur, trace_id, arg_name, arg);
    }

    /// Record a span with an explicit start and duration — used when the
    /// caller already measured the interval (e.g. phase timings that must
    /// agree exactly with a separately-kept wall clock).
    pub fn complete_at(
        &self,
        name: &'static str,
        ts_ns: u64,
        dur_ns: u64,
        trace_id: u64,
        arg_name: &'static str,
        arg: u64,
    ) {
        self.buf.push(TraceEvent {
            ts_ns,
            dur_ns,
            proc: self.proc,
            track: self.track,
            name,
            kind: EventKind::Complete,
            trace_id,
            arg_name,
            arg,
        });
    }

    /// Record a point-in-time marker.
    pub fn instant(&self, name: &'static str) {
        self.instant_full(name, 0, "", 0);
    }

    /// [`Tracer::instant`] with a request id and a numeric argument.
    pub fn instant_full(
        &self,
        name: &'static str,
        trace_id: u64,
        arg_name: &'static str,
        arg: u64,
    ) {
        let ts = self.buf.now_ns();
        self.buf.push(TraceEvent {
            ts_ns: ts,
            dur_ns: 0,
            proc: self.proc,
            track: self.track,
            name,
            kind: EventKind::Instant,
            trace_id,
            arg_name,
            arg,
        });
    }

    /// RAII span: records `[creation, drop]` under `name`.
    pub fn span(&self, name: &'static str) -> TraceSpan<'_> {
        TraceSpan {
            tracer: self,
            name,
            start: self.begin(),
        }
    }
}

/// Guard returned by [`Tracer::span`]; records a complete event on drop.
#[must_use = "a trace span records on drop; binding it to `_` drops it immediately"]
#[derive(Debug)]
pub struct TraceSpan<'t> {
    tracer: &'t Tracer,
    name: &'static str,
    start: u64,
}

impl Drop for TraceSpan<'_> {
    fn drop(&mut self) {
        self.tracer.complete(self.name, self.start);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn ev(ts: u64, name: &'static str) -> TraceEvent {
        TraceEvent {
            ts_ns: ts,
            dur_ns: 1,
            proc: "test",
            track: 0,
            name,
            kind: EventKind::Complete,
            trace_id: 0,
            arg_name: "",
            arg: 0,
        }
    }

    #[test]
    fn push_snapshot_round_trip() {
        let buf = TraceBuffer::new(64);
        buf.push(ev(10, "a"));
        buf.push(ev(5, "b"));
        let snap = buf.snapshot();
        assert_eq!(snap.len(), 2);
        // Sorted by timestamp.
        assert_eq!(snap[0].name, "b");
        assert_eq!(snap[1].name, "a");
        let s = buf.stats();
        assert_eq!(s.pushed, 2);
        assert_eq!(s.dropped, 0);
        assert_eq!(s.retained, 2);
    }

    #[test]
    fn ring_overwrites_oldest_and_conserves_counts() {
        let buf = TraceBuffer::new(1); // one slot per shard
        for i in 0..100 {
            buf.push(ev(i, "x"));
        }
        let s = buf.stats();
        assert_eq!(s.pushed, 100);
        assert_eq!(s.pushed, s.retained + s.dropped);
        // This thread is pinned to one shard, so exactly one event
        // survives — the newest.
        assert_eq!(s.retained, 1);
        assert_eq!(buf.snapshot()[0].ts_ns, 99);
    }

    #[test]
    fn disabled_buffer_drops_everything() {
        let buf = TraceBuffer::new(16);
        buf.set_enabled(false);
        buf.push(ev(1, "a"));
        assert_eq!(buf.stats().pushed, 0);
        buf.set_enabled(true);
        buf.push(ev(2, "b"));
        assert_eq!(buf.stats().pushed, 1);
    }

    #[test]
    fn sampling_hits_one_in_n() {
        let buf = TraceBuffer::with_sampling(16, 4);
        let hits = (1..=100u64).filter(|&id| buf.sample_hit(id)).count();
        assert_eq!(hits, 25);
        let every = TraceBuffer::new(16);
        assert!(every.sample_hit(7));
    }

    #[test]
    fn trace_ids_are_nonzero_and_unique() {
        let buf = TraceBuffer::new(16);
        let a = buf.next_trace_id();
        let b = buf.next_trace_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn tracer_records_spans_and_instants() {
        let buf = TraceBuffer::shared(64);
        let t = Tracer::new(Arc::clone(&buf), "train", 3);
        let start = t.begin();
        t.complete_full("assign", start, 0, "iter", 7);
        t.instant_full("retry", 42, "attempt", 2);
        {
            let _g = t.span("scoped");
        }
        let snap = buf.snapshot();
        assert_eq!(snap.len(), 3);
        let assign = snap.iter().find(|e| e.name == "assign").unwrap();
        assert_eq!(assign.kind, EventKind::Complete);
        assert_eq!(assign.proc, "train");
        assert_eq!(assign.track, 3);
        assert_eq!((assign.arg_name, assign.arg), ("iter", 7));
        let retry = snap.iter().find(|e| e.name == "retry").unwrap();
        assert_eq!(retry.kind, EventKind::Instant);
        assert_eq!(retry.trace_id, 42);
        assert!(snap.iter().any(|e| e.name == "scoped"));
    }

    #[test]
    fn explicit_durations_are_preserved() {
        let buf = TraceBuffer::shared(8);
        let t = Tracer::new(Arc::clone(&buf), "train", 0);
        t.complete_at("merge", 1000, 250, 0, "", 0);
        let e = buf.snapshot()[0];
        assert_eq!((e.ts_ns, e.dur_ns), (1000, 250));
    }

    #[test]
    fn concurrent_writers_conserve_events() {
        let buf = TraceBuffer::shared(128);
        let threads = 8;
        let per_thread = 1000u64;
        thread::scope(|s| {
            for _ in 0..threads {
                let buf = Arc::clone(&buf);
                s.spawn(move || {
                    for i in 0..per_thread {
                        buf.push(ev(i, "w"));
                    }
                });
            }
        });
        let st = buf.stats();
        assert_eq!(st.pushed, threads * per_thread);
        assert_eq!(st.pushed, st.retained + st.dropped);
        assert_eq!(buf.snapshot().len() as u64, st.retained);
    }

    #[test]
    fn identity_equality() {
        let a = TraceBuffer::shared(8);
        let b = TraceBuffer::shared(8);
        assert_eq!(a, a.clone());
        assert_ne!(a, b);
    }
}
