//! Chrome-trace / Perfetto JSON exporter for [`TraceEvent`]s.
//!
//! Hand-rolled JSON with fully deterministic ordering, following the same
//! discipline as [`crate::export`]: events are sorted by (process, track,
//! timestamp, name), object keys are emitted in a fixed order, and
//! timestamps are fixed-point microseconds — so two exports of the same
//! snapshot are byte-identical. Open the output in <https://ui.perfetto.dev>
//! or `chrome://tracing`.

use crate::trace::{EventKind, TraceEvent};
use std::fmt::Write as _;

/// Microseconds with nanosecond precision, as a fixed-point decimal
/// (`1234.567`). Avoids float formatting so output is stable.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn args_json(e: &TraceEvent) -> String {
    let mut parts = Vec::new();
    if e.trace_id != 0 {
        parts.push(format!("\"trace_id\":\"{}\"", e.trace_id));
    }
    if !e.arg_name.is_empty() {
        parts.push(format!("\"{}\":{}", e.arg_name, e.arg));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!(",\"args\":{{{}}}", parts.join(","))
    }
}

/// Render events (plus the buffer's dropped-event count) as one
/// Chrome-trace JSON document.
///
/// Each distinct `proc` becomes a pid (1-based, in sorted-name order,
/// named via `process_name` metadata); each `track` becomes a tid within
/// its process. [`EventKind::Complete`] events render as `"X"` with
/// `ts`/`dur`, [`EventKind::Instant`] as thread-scoped `"i"`.
pub fn to_chrome_json(events: &[TraceEvent], dropped: u64) -> String {
    let mut procs: Vec<&'static str> = events.iter().map(|e| e.proc).collect();
    procs.sort_unstable();
    procs.dedup();
    let pid_of = |p: &str| procs.iter().position(|&q| q == p).unwrap_or(0) + 1;

    let mut sorted: Vec<&TraceEvent> = events.iter().collect();
    sorted.sort_by_key(|e| (pid_of(e.proc), e.track, e.ts_ns, e.name));

    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":\"");
    let _ = write!(out, "{dropped}");
    out.push_str("\"},\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
    };
    for (i, p) in procs.iter().enumerate() {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"args\":{{\"name\":\"{}\"}},\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0}}",
            crate::export::escape_json(p),
            i + 1
        );
    }
    for e in sorted {
        sep(&mut out);
        let name = crate::export::escape_json(e.name);
        match e.kind {
            EventKind::Complete => {
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{}{}}}",
                    name,
                    pid_of(e.proc),
                    e.track,
                    us(e.ts_ns),
                    us(e.dur_ns),
                    args_json(e)
                );
            }
            EventKind::Instant => {
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{},\"tid\":{},\"ts\":{}{}}}",
                    name,
                    pid_of(e.proc),
                    e.track,
                    us(e.ts_ns),
                    args_json(e)
                );
            }
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(proc: &'static str, track: u32, ts: u64, name: &'static str) -> TraceEvent {
        TraceEvent {
            ts_ns: ts,
            dur_ns: 1500,
            proc,
            track,
            name,
            kind: EventKind::Complete,
            trace_id: 0,
            arg_name: "",
            arg: 0,
        }
    }

    #[test]
    fn fixed_point_microseconds() {
        assert_eq!(us(0), "0.000");
        assert_eq!(us(1), "0.001");
        assert_eq!(us(1_234_567), "1234.567");
    }

    #[test]
    fn export_is_deterministic_and_ordered() {
        // Deliberately unsorted input across two processes.
        let events = vec![
            ev("train", 1, 50, "update"),
            ev("comm", 0, 10, "allreduce"),
            ev("train", 0, 5, "assign"),
        ];
        let a = to_chrome_json(&events, 3);
        let b = to_chrome_json(&events, 3);
        assert_eq!(a, b);
        assert!(a.contains("\"dropped_events\":\"3\""));
        // Process metadata for both procs, sorted: comm=1, train=2.
        assert!(a.contains("{\"args\":{\"name\":\"comm\"},\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0}"));
        assert!(a.contains("{\"args\":{\"name\":\"train\"},\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0}"));
        // comm events precede train events in the array.
        assert!(a.find("allreduce").unwrap() < a.find("assign").unwrap());
        assert!(a.contains("\"ts\":0.010,\"dur\":1.500"));
    }

    #[test]
    fn instants_and_args_render() {
        let mut e = ev("serve", 2, 7, "shard_failover");
        e.kind = EventKind::Instant;
        e.trace_id = 99;
        e.arg_name = "shard";
        e.arg = 1;
        let json = to_chrome_json(&[e], 0);
        assert!(json.contains(
            "{\"name\":\"shard_failover\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":2,\
             \"ts\":0.007,\"args\":{\"trace_id\":\"99\",\"shard\":1}}"
        ));
    }

    #[test]
    fn empty_input_is_valid_json() {
        assert_eq!(
            to_chrome_json(&[], 0),
            "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":\"0\"},\"traceEvents\":[]}"
        );
    }
}
