//! RAII timing spans and the thread-local histogram fold-in pattern.

use crate::registry::MetricsRegistry;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;
use sw_des::stats::Histogram;

/// Intern `<name>_ns` once per distinct span name. Span names are a
/// small, static vocabulary (phase and stage names), so leaking the
/// suffixed strings is bounded; after the first call for a name,
/// [`Span::enter`] never allocates — per-micro-batch spans on the
/// serving hot path are free of `format!` churn.
fn interned_ns(name: &str) -> &'static str {
    static INTERNED: Mutex<BTreeMap<String, &'static str>> = Mutex::new(BTreeMap::new());
    let mut map = INTERNED.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(&s) = map.get(name) {
        return s;
    }
    let leaked: &'static str = Box::leak(format!("{name}_ns").into_boxed_str());
    map.insert(name.to_string(), leaked);
    leaked
}

/// An RAII timing guard: created by [`Span::enter`] (or the
/// [`span!`](crate::span!) macro), it records its elapsed wall time in
/// nanoseconds into the histogram `<name>_ns` when dropped.
///
/// ```
/// use swkm_obs::{span, MetricsRegistry};
/// let reg = MetricsRegistry::new();
/// {
///     let _s = span!(reg, "update");
///     // ... timed work ...
/// }
/// assert_eq!(reg.histogram("update_ns").unwrap().count(), 1);
/// ```
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
#[derive(Debug)]
pub struct Span<'r> {
    registry: &'r MetricsRegistry,
    name: &'static str,
    start: Instant,
    finished: bool,
}

impl<'r> Span<'r> {
    /// Start timing `name` against `registry`. The suffixed histogram
    /// name is interned: only the first span of a given name allocates.
    pub fn enter(registry: &'r MetricsRegistry, name: &str) -> Self {
        Span {
            registry,
            name: interned_ns(name),
            start: Instant::now(),
            finished: false,
        }
    }

    /// Nanoseconds elapsed so far, without closing the span.
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Close the span now and return the recorded nanoseconds.
    pub fn finish(mut self) -> u64 {
        let ns = self.elapsed_ns();
        self.registry.record(self.name, ns);
        self.finished = true;
        ns
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if !self.finished {
            let ns = self.elapsed_ns();
            self.registry.record(self.name, ns);
        }
    }
}

/// A per-thread scratch pad of histograms that folds into the shared
/// registry exactly once, on drop — so hot loops never contend on the
/// registry lock per sample. This generalises the `StageHists` pattern the
/// serving workers use: record locally, merge bucket-wise at the end
/// (lossless, because buckets are fixed powers of two).
///
/// ```
/// use swkm_obs::{LocalHists, MetricsRegistry};
/// let reg = MetricsRegistry::new();
/// {
///     let mut local = LocalHists::new(&reg);
///     for v in 0..100u64 {
///         local.record("batch_size", v); // no registry lock taken
///     }
/// } // fold-in happens here
/// assert_eq!(reg.histogram("batch_size").unwrap().count(), 100);
/// ```
#[derive(Debug)]
pub struct LocalHists<'r> {
    registry: &'r MetricsRegistry,
    hists: BTreeMap<String, Histogram>,
}

impl<'r> LocalHists<'r> {
    pub fn new(registry: &'r MetricsRegistry) -> Self {
        LocalHists {
            registry,
            hists: BTreeMap::new(),
        }
    }

    /// Record one sample into the local histogram `name`. Allocates only
    /// on the first sample of a given name.
    pub fn record(&mut self, name: &str, value: u64) {
        if let Some(h) = self.hists.get_mut(name) {
            h.record(value);
            return;
        }
        self.hists
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Samples accumulated locally under `name` so far.
    pub fn local_count(&self, name: &str) -> u64 {
        self.hists.get(name).map_or(0, Histogram::count)
    }
}

impl Drop for LocalHists<'_> {
    fn drop(&mut self) {
        for (name, hist) in &self.hists {
            self.registry.merge_histogram(name, hist);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn span_records_on_drop() {
        let reg = MetricsRegistry::new();
        {
            let _s = Span::enter(&reg, "phase");
        }
        let h = reg.histogram("phase_ns").unwrap();
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn span_finish_records_once() {
        let reg = MetricsRegistry::new();
        let s = Span::enter(&reg, "phase");
        let ns = s.finish();
        let h = reg.histogram("phase_ns").unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(h.bucket_count(ns), 1);
    }

    #[test]
    fn span_macro_expands() {
        let reg = MetricsRegistry::new();
        {
            let _s = crate::span!(reg, "assign");
        }
        assert_eq!(reg.histogram("assign_ns").unwrap().count(), 1);
    }

    #[test]
    fn local_hists_fold_in_from_many_threads() {
        let reg = MetricsRegistry::shared();
        let threads = 6;
        let per_thread = 500u64;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let reg = Arc::clone(&reg);
                thread::spawn(move || {
                    let mut local = LocalHists::new(&reg);
                    for v in 0..per_thread {
                        local.record("work_ns", v);
                    }
                    assert_eq!(local.local_count("work_ns"), per_thread);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            reg.histogram("work_ns").unwrap().count(),
            threads as u64 * per_thread
        );
    }
}
