//! Serving metrics: throughput counters plus per-stage log₂ latency
//! histograms (reusing `sw_des::stats::Histogram`, the same instrument the
//! simulator uses for transfer sizes). Workers record into thread-local
//! histograms per batch and fold them in with `Histogram::merge` under a
//! single short lock, so the hot path never contends per-request.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use sw_des::stats::Histogram;

/// One histogram per pipeline stage plus the batch-size distribution.
#[derive(Debug, Clone, Default)]
pub struct StageHists {
    /// Nanoseconds from admission to batch formation.
    pub queue_wait_ns: Histogram,
    /// Nanoseconds spent in the sharded index scan, per batch.
    pub execute_ns: Histogram,
    /// Nanoseconds from admission to reply, per request.
    pub total_ns: Histogram,
    /// Requests per formed micro-batch.
    pub batch_size: Histogram,
}

impl StageHists {
    pub fn merge(&mut self, other: &StageHists) {
        self.queue_wait_ns.merge(&other.queue_wait_ns);
        self.execute_ns.merge(&other.execute_ns);
        self.total_ns.merge(&other.total_ns);
        self.batch_size.merge(&other.batch_size);
    }
}

/// Shared, thread-safe serving metrics.
#[derive(Debug)]
pub struct ServeMetrics {
    accepted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    hists: Mutex<StageHists>,
    started: Instant,
}

impl ServeMetrics {
    pub fn new() -> Self {
        ServeMetrics {
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            hists: Mutex::new(StageHists::default()),
            started: Instant::now(),
        }
    }

    pub fn record_accepted(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_completed(&self, n: u64) {
        self.completed.fetch_add(n, Ordering::Relaxed);
    }

    /// Fold a worker's per-batch histograms into the shared set.
    pub fn merge_hists(&self, local: &StageHists) {
        self.hists.lock().unwrap().merge(local);
    }

    /// Point-in-time view. `queue_depth` is sampled by the caller (it
    /// lives in the channel, not here).
    pub fn snapshot(&self, queue_depth: usize) -> Snapshot {
        let hists = self.hists.lock().unwrap().clone();
        let completed = self.completed.load(Ordering::Relaxed);
        let elapsed = self.started.elapsed();
        Snapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed,
            queue_depth,
            elapsed,
            qps: completed as f64 / elapsed.as_secs_f64().max(1e-9),
            queue_wait_p50_ns: hists.queue_wait_ns.quantile_upper_bound(0.5),
            queue_wait_p99_ns: hists.queue_wait_ns.quantile_upper_bound(0.99),
            execute_p50_ns: hists.execute_ns.quantile_upper_bound(0.5),
            execute_p99_ns: hists.execute_ns.quantile_upper_bound(0.99),
            total_p50_ns: hists.total_ns.quantile_upper_bound(0.5),
            total_p99_ns: hists.total_ns.quantile_upper_bound(0.99),
            batch_p50: hists.batch_size.quantile_upper_bound(0.5),
            batches: hists.batch_size.count(),
        }
    }
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

/// A consistent view of the serving counters and latency quantiles.
/// Latency quantiles are upper bounds of the winning log₂ bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    pub accepted: u64,
    pub rejected: u64,
    pub completed: u64,
    pub queue_depth: usize,
    pub elapsed: Duration,
    /// Completed requests per second since the server started.
    pub qps: f64,
    pub queue_wait_p50_ns: u64,
    pub queue_wait_p99_ns: u64,
    pub execute_p50_ns: u64,
    pub execute_p99_ns: u64,
    pub total_p50_ns: u64,
    pub total_p99_ns: u64,
    /// Median micro-batch size.
    pub batch_p50: u64,
    /// Micro-batches formed.
    pub batches: u64,
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

impl std::fmt::Display for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "requests: {} accepted, {} shed, {} completed ({:.0} req/s, queue depth {})",
            self.accepted, self.rejected, self.completed, self.qps, self.queue_depth
        )?;
        writeln!(
            f,
            "latency:  queue-wait p50 {} p99 {} | execute p50 {} p99 {} | total p50 {} p99 {}",
            fmt_ns(self.queue_wait_p50_ns),
            fmt_ns(self.queue_wait_p99_ns),
            fmt_ns(self.execute_p50_ns),
            fmt_ns(self.execute_p99_ns),
            fmt_ns(self.total_p50_ns),
            fmt_ns(self.total_p99_ns)
        )?;
        write!(
            f,
            "batching: {} micro-batches, median size {}",
            self.batches, self.batch_p50
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = ServeMetrics::new();
        m.record_accepted();
        m.record_accepted();
        m.record_rejected();
        m.record_completed(2);
        let snap = m.snapshot(3);
        assert_eq!(snap.accepted, 2);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.completed, 2);
        assert_eq!(snap.queue_depth, 3);
    }

    #[test]
    fn merged_hists_feed_quantiles() {
        let m = ServeMetrics::new();
        let mut local = StageHists::default();
        for _ in 0..100 {
            local.total_ns.record(1000);
        }
        local.total_ns.record(1 << 30);
        local.batch_size.record(8);
        m.merge_hists(&local);
        let snap = m.snapshot(0);
        assert!(snap.total_p50_ns >= 1000 && snap.total_p50_ns < 2048);
        assert!(snap.total_p99_ns >= 1000);
        assert_eq!(snap.batches, 1);
    }

    #[test]
    fn display_mentions_all_sections() {
        let s = ServeMetrics::new().snapshot(0).to_string();
        assert!(s.contains("requests:"));
        assert!(s.contains("latency:"));
        assert!(s.contains("batching:"));
    }
}
