//! Serving metrics on the workspace-wide observability registry: throughput
//! counters plus per-stage log₂ latency histograms, stored as
//! `serve_*`-prefixed metrics in a [`swkm_obs::MetricsRegistry`] so serving
//! and training share one vocabulary and one set of exporters. Workers
//! record into thread-local histograms per batch and fold them in with
//! `Histogram::merge` under a single short lock, so the hot path never
//! contends per-request.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use sw_des::stats::Histogram;
use swkm_obs::MetricsRegistry;

/// How many slow-request exemplars [`ServeMetrics`] retains.
pub const EXEMPLAR_K: usize = 4;

/// One histogram per pipeline stage plus the batch-size distribution.
#[derive(Debug, Clone, Default)]
pub struct StageHists {
    /// Nanoseconds from admission to batch formation.
    pub queue_wait_ns: Histogram,
    /// Nanoseconds spent in the sharded index scan, per batch.
    pub execute_ns: Histogram,
    /// Nanoseconds from admission to reply, per request.
    pub total_ns: Histogram,
    /// Requests per formed micro-batch.
    pub batch_size: Histogram,
}

impl StageHists {
    pub fn merge(&mut self, other: &StageHists) {
        self.queue_wait_ns.merge(&other.queue_wait_ns);
        self.execute_ns.merge(&other.execute_ns);
        self.total_ns.merge(&other.total_ns);
        self.batch_size.merge(&other.batch_size);
    }
}

/// Shared, thread-safe serving metrics, backed by a
/// [`MetricsRegistry`]. The registry names are `serve_accepted`,
/// `serve_rejected`, `serve_completed` (counters), `serve_queue_depth`
/// (gauge, refreshed at snapshot time) and `serve_queue_wait_ns`,
/// `serve_execute_ns`, `serve_total_ns`, `serve_batch_size` (histograms).
#[derive(Debug)]
pub struct ServeMetrics {
    registry: Arc<MetricsRegistry>,
    started: Instant,
    /// Top-[`EXEMPLAR_K`] slowest *traced* requests as `(total_ns,
    /// trace_id)`, descending. Kept beside the registry — never inside it —
    /// so attaching exemplars cannot perturb the byte-stable JSON export;
    /// they render as extra Prometheus lines via
    /// [`swkm_obs::export::prom_exemplars`].
    exemplars: Mutex<Vec<(u64, u64)>>,
}

impl ServeMetrics {
    pub fn new() -> Self {
        Self::with_registry(MetricsRegistry::shared())
    }

    /// Record into an existing registry — this is how a process that both
    /// trains and serves keeps one metrics namespace and one export.
    pub fn with_registry(registry: Arc<MetricsRegistry>) -> Self {
        // Pre-register the fault and swap counters at zero so exports
        // always carry them — tests and dashboards can assert "no
        // failovers" / "no swaps" explicitly rather than inferring it from
        // an absent key.
        registry.counter_add("serve_failed", 0);
        registry.counter_add("shard_failovers", 0);
        registry.counter_add("serve_model_swaps", 0);
        // Event-core counters/gauges, pre-registered for the same reason:
        // "no sheds / no steals / no scaling / nothing stranded" must be
        // assertable from the export, not inferred from absent keys.
        registry.counter_add("serve_rejected", 0);
        registry.counter_add("serve_admission_shed", 0);
        registry.counter_add("serve_steal_total", 0);
        registry.counter_add("serve_scale_up_total", 0);
        registry.counter_add("serve_scale_down_total", 0);
        registry.gauge_set("serve_stranded_requests", 0.0);
        ServeMetrics {
            registry,
            started: Instant::now(),
            exemplars: Mutex::new(Vec::new()),
        }
    }

    /// The backing registry, for exporting alongside training metrics.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    pub fn record_accepted(&self) {
        self.registry.counter_inc("serve_accepted");
    }

    pub fn record_rejected(&self) {
        self.registry.counter_inc("serve_rejected");
    }

    pub fn record_completed(&self, n: u64) {
        self.registry.counter_add("serve_completed", n);
    }

    /// Requests that failed with a typed error after admission (e.g. every
    /// shard down) — replied to, never silently dropped.
    pub fn record_failed(&self, n: u64) {
        self.registry.counter_add("serve_failed", n);
    }

    /// Batches re-dispatched around dead shards, counted per dead shard
    /// per batch.
    pub fn record_failovers(&self, n: u64) {
        self.registry.counter_add("shard_failovers", n);
    }

    /// A model hot-swap: bump the swap counter, mirror the new generation
    /// into the `serve_model_generation` gauge and record how long the
    /// installation (the write-locked window) took.
    pub fn record_swap(&self, generation: u64, install_ns: u64) {
        self.registry.counter_inc("serve_model_swaps");
        self.registry
            .gauge_set("serve_model_generation", generation as f64);
        self.registry.record("serve_swap_ns", install_ns);
    }

    /// A request shed by SLO-aware admission control
    /// ([`crate::error::ServeError::SloShed`]). Counted under both
    /// `serve_admission_shed` (the policy's own meter) and
    /// `serve_rejected` (the total-shed meter), so the conservation
    /// invariant `issued == accepted + rejected` holds with or without an
    /// SLO configured.
    pub fn record_admission_shed(&self) {
        self.registry.counter_inc("serve_admission_shed");
        self.registry.counter_inc("serve_rejected");
    }

    /// A batch executed by a worker other than the one it was routed to.
    pub fn record_steal(&self) {
        self.registry.counter_inc("serve_steal_total");
    }

    /// Mirror the active shard count and maintain its peak/low watermark
    /// gauges — the export is final-value-only, so "did it scale up *and*
    /// back down" must be separate gauges, not a time series.
    pub fn record_shards_active(&self, active: u64) {
        let active = active as f64;
        self.registry.gauge_set("serve_shards_active", active);
        let peak = self.registry.gauge("serve_shards_active_peak");
        if peak.map_or(true, |p| active > p) {
            self.registry.gauge_set("serve_shards_active_peak", active);
        }
        let low = self.registry.gauge("serve_shards_active_low");
        if low.map_or(true, |l| active < l) {
            self.registry.gauge_set("serve_shards_active_low", active);
        }
    }

    /// An elastic scale-up to `active` shards.
    pub fn record_scale_up(&self, active: u64) {
        self.registry.counter_inc("serve_scale_up_total");
        self.record_shards_active(active);
    }

    /// An elastic scale-down to `active` shards.
    pub fn record_scale_down(&self, active: u64) {
        self.registry.counter_inc("serve_scale_down_total");
        self.record_shards_active(active);
    }

    /// The admission controller's published state, refreshed every tick.
    pub fn record_admission_state(&self, predicted_p99_ns: f64, shedding: bool) {
        self.registry
            .gauge_set("serve_predicted_p99_ns", predicted_p99_ns);
        self.registry
            .gauge_set("serve_admission_shedding", if shedding { 1.0 } else { 0.0 });
    }

    /// Windowed throughput (completed requests per second over one tick).
    pub fn record_window_qps(&self, qps: f64) {
        self.registry.gauge_set("serve_qps_window", qps);
    }

    /// Index shards still alive after an injected kill.
    pub fn record_alive_index_shards(&self, alive: u64) {
        self.registry
            .gauge_set("serve_index_alive_shards", alive as f64);
    }

    /// Requests found parked in a queue by the drain-on-close audit.
    /// Anything other than 0 is a drained-shutdown contract violation.
    pub fn record_stranded(&self, stranded: u64) {
        self.registry
            .gauge_set("serve_stranded_requests", stranded as f64);
    }

    /// Offer a traced request as a slow-request exemplar: kept iff it is
    /// among the [`EXEMPLAR_K`] slowest seen so far. Untraced requests
    /// (`trace_id == 0`) are ignored — an exemplar nobody can look up in
    /// the trace is noise.
    pub fn record_exemplar(&self, total_ns: u64, trace_id: u64) {
        if trace_id == 0 {
            return;
        }
        let mut ex = self.exemplars.lock().unwrap_or_else(|e| e.into_inner());
        ex.push((total_ns, trace_id));
        ex.sort_unstable_by(|a, b| b.cmp(a));
        ex.truncate(EXEMPLAR_K);
    }

    /// The retained `(total_ns, trace_id)` exemplars, slowest first. Feed
    /// them to [`swkm_obs::export::prom_exemplars`] to attach
    /// `serve_latency_exemplar{trace_id="..."}` lines to a Prometheus
    /// export.
    pub fn exemplars(&self) -> Vec<(u64, u64)> {
        self.exemplars
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Fold a worker's per-batch histograms into the shared set.
    pub fn merge_hists(&self, local: &StageHists) {
        self.registry
            .merge_histogram("serve_queue_wait_ns", &local.queue_wait_ns);
        self.registry
            .merge_histogram("serve_execute_ns", &local.execute_ns);
        self.registry
            .merge_histogram("serve_total_ns", &local.total_ns);
        self.registry
            .merge_histogram("serve_batch_size", &local.batch_size);
    }

    /// Point-in-time view. `queue_depth` is sampled by the caller (it
    /// lives in the channel, not here) and mirrored into the
    /// `serve_queue_depth` gauge.
    pub fn snapshot(&self, queue_depth: usize) -> Snapshot {
        self.registry
            .gauge_set("serve_queue_depth", queue_depth as f64);
        let quantile = |name: &str, q: f64| {
            self.registry
                .histogram(name)
                .map_or(0, |h| h.quantile_upper_bound(q))
        };
        let completed = self.registry.counter("serve_completed");
        let elapsed = self.started.elapsed();
        Snapshot {
            accepted: self.registry.counter("serve_accepted"),
            rejected: self.registry.counter("serve_rejected"),
            completed,
            failed: self.registry.counter("serve_failed"),
            shard_failovers: self.registry.counter("shard_failovers"),
            model_swaps: self.registry.counter("serve_model_swaps"),
            admission_shed: self.registry.counter("serve_admission_shed"),
            steals: self.registry.counter("serve_steal_total"),
            shards_active: self
                .registry
                .gauge("serve_shards_active")
                .unwrap_or(0.0) as u64,
            stranded: self
                .registry
                .gauge("serve_stranded_requests")
                .unwrap_or(0.0) as u64,
            queue_depth,
            elapsed,
            qps: completed as f64 / elapsed.as_secs_f64().max(1e-9),
            queue_wait_p50_ns: quantile("serve_queue_wait_ns", 0.5),
            queue_wait_p99_ns: quantile("serve_queue_wait_ns", 0.99),
            execute_p50_ns: quantile("serve_execute_ns", 0.5),
            execute_p99_ns: quantile("serve_execute_ns", 0.99),
            total_p50_ns: quantile("serve_total_ns", 0.5),
            total_p99_ns: quantile("serve_total_ns", 0.99),
            batch_p50: quantile("serve_batch_size", 0.5),
            batches: self
                .registry
                .histogram("serve_batch_size")
                .map_or(0, |h| h.count()),
        }
    }
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

/// A consistent view of the serving counters and latency quantiles.
/// Latency quantiles are upper bounds of the winning log₂ bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    pub accepted: u64,
    pub rejected: u64,
    pub completed: u64,
    /// Admitted requests that failed with a typed error (all shards down).
    pub failed: u64,
    /// Batches re-dispatched around dead shards (per dead shard per batch).
    pub shard_failovers: u64,
    /// Model generations hot-swapped in while serving.
    pub model_swaps: u64,
    /// Requests shed by SLO-aware admission control (a subset of
    /// `rejected`).
    pub admission_shed: u64,
    /// Micro-batches executed by a worker other than the one they were
    /// routed to.
    pub steals: u64,
    /// Active shard count at snapshot time (0 until the dispatcher's
    /// baseline pool reports in).
    pub shards_active: u64,
    /// Requests found stranded by the drain-on-close audit (0 unless the
    /// graceful-shutdown contract was violated).
    pub stranded: u64,
    pub queue_depth: usize,
    pub elapsed: Duration,
    /// Completed requests per second since the server started. Warm-up
    /// dilutes this; prefer [`Snapshot::qps_since`] for steady-state rates.
    pub qps: f64,
    pub queue_wait_p50_ns: u64,
    pub queue_wait_p99_ns: u64,
    pub execute_p50_ns: u64,
    pub execute_p99_ns: u64,
    pub total_p50_ns: u64,
    pub total_p99_ns: u64,
    /// Median micro-batch size.
    pub batch_p50: u64,
    /// Micro-batches formed.
    pub batches: u64,
}

impl Snapshot {
    /// Windowed throughput: completed requests per second between `prev`
    /// and this snapshot (taken later from the same server). Unlike
    /// [`Snapshot::qps`], this is not diluted by anything that happened
    /// before `prev` — it is what periodic reporting should print.
    pub fn qps_since(&self, prev: &Snapshot) -> f64 {
        let dn = self.completed.saturating_sub(prev.completed);
        let dt = self.elapsed.saturating_sub(prev.elapsed).as_secs_f64();
        dn as f64 / dt.max(1e-9)
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

impl std::fmt::Display for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "requests: {} accepted, {} shed, {} completed, {} failed ({:.0} req/s, queue depth {})",
            self.accepted, self.rejected, self.completed, self.failed, self.qps, self.queue_depth
        )?;
        if self.shard_failovers > 0 {
            writeln!(
                f,
                "failover: {} batch×shard re-dispatches",
                self.shard_failovers
            )?;
        }
        if self.model_swaps > 0 {
            writeln!(
                f,
                "hot-swap: {} model generation(s) installed",
                self.model_swaps
            )?;
        }
        if self.shards_active > 0 || self.steals > 0 || self.admission_shed > 0 {
            writeln!(
                f,
                "dispatch: {} shard(s) active, {} batch(es) stolen, {} SLO-shed, {} stranded",
                self.shards_active, self.steals, self.admission_shed, self.stranded
            )?;
        }
        writeln!(
            f,
            "latency:  queue-wait p50 {} p99 {} | execute p50 {} p99 {} | total p50 {} p99 {}",
            fmt_ns(self.queue_wait_p50_ns),
            fmt_ns(self.queue_wait_p99_ns),
            fmt_ns(self.execute_p50_ns),
            fmt_ns(self.execute_p99_ns),
            fmt_ns(self.total_p50_ns),
            fmt_ns(self.total_p99_ns)
        )?;
        write!(
            f,
            "batching: {} micro-batches, median size {}",
            self.batches, self.batch_p50
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = ServeMetrics::new();
        m.record_accepted();
        m.record_accepted();
        m.record_rejected();
        m.record_completed(2);
        let snap = m.snapshot(3);
        assert_eq!(snap.accepted, 2);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.completed, 2);
        assert_eq!(snap.queue_depth, 3);
    }

    #[test]
    fn merged_hists_feed_quantiles() {
        let m = ServeMetrics::new();
        let mut local = StageHists::default();
        for _ in 0..100 {
            local.total_ns.record(1000);
        }
        local.total_ns.record(1 << 30);
        local.batch_size.record(8);
        m.merge_hists(&local);
        let snap = m.snapshot(0);
        assert!(snap.total_p50_ns >= 1000 && snap.total_p50_ns < 2048);
        assert!(snap.total_p99_ns >= 1000);
        assert_eq!(snap.batches, 1);
    }

    #[test]
    fn metrics_land_in_the_shared_registry() {
        let reg = MetricsRegistry::shared();
        let m = ServeMetrics::with_registry(Arc::clone(&reg));
        m.record_accepted();
        m.record_completed(1);
        let mut local = StageHists::default();
        local.execute_ns.record(500);
        m.merge_hists(&local);
        m.snapshot(4);
        // The same vocabulary is visible through the registry's exporters.
        assert_eq!(reg.counter("serve_accepted"), 1);
        assert_eq!(reg.counter("serve_completed"), 1);
        assert_eq!(reg.gauge("serve_queue_depth"), Some(4.0));
        assert_eq!(reg.histogram("serve_execute_ns").unwrap().count(), 1);
        let json = swkm_obs::export::to_json(&reg);
        assert!(json.contains("\"serve_accepted\":1"));
    }

    #[test]
    fn exemplars_never_perturb_the_json_export() {
        // The byte-stable JSON re-export contract must survive exemplars:
        // they live beside the registry and only ever render as extra
        // Prometheus lines.
        let reg = MetricsRegistry::shared();
        let m = ServeMetrics::with_registry(Arc::clone(&reg));
        let mut local = StageHists::default();
        local.total_ns.record(1_000_000);
        m.merge_hists(&local);
        m.snapshot(0);
        let before = swkm_obs::export::to_json(&reg);
        for i in 0..10u64 {
            m.record_exemplar(1_000_000 + i * 7, 100 + i);
        }
        m.record_exemplar(5, 0); // untraced: ignored
        assert_eq!(before, swkm_obs::export::to_json(&reg));
        let ex = m.exemplars();
        assert_eq!(ex.len(), EXEMPLAR_K);
        assert_eq!(ex[0], (1_000_063, 109), "slowest first");
        let text = swkm_obs::export::prom_exemplars("serve_latency_exemplar", &ex);
        assert!(text.contains("serve_latency_exemplar{trace_id=\"109\"} 1000063"));
    }

    #[test]
    fn windowed_qps_ignores_warmup() {
        let mut first = ServeMetrics::new().snapshot(0);
        first.completed = 100;
        first.elapsed = Duration::from_secs(10); // slow warm-up: 10 qps
        let mut second = first.clone();
        second.completed = 1100;
        second.elapsed = Duration::from_secs(11); // then 1000 qps steady
        assert!((second.qps_since(&first) - 1000.0).abs() < 1e-9);
        // Since-start rate is diluted to 100 qps; the window is not.
        let since_start = second.completed as f64 / second.elapsed.as_secs_f64();
        assert!(since_start < 101.0);
        // Degenerate window (no time elapsed) does not divide by zero.
        assert!(second.qps_since(&second.clone()).is_finite());
    }

    #[test]
    fn display_mentions_all_sections() {
        let s = ServeMetrics::new().snapshot(0).to_string();
        assert!(s.contains("requests:"));
        assert!(s.contains("latency:"));
        assert!(s.contains("batching:"));
    }
}
