//! SLO-aware admission control and elastic shard scaling, written as
//! *pure* decision functions so the policies are property-testable without
//! threads, channels or clocks.
//!
//! The admission controller sheds by **predicted p99**, not raw queue
//! depth: every dispatcher tick it swaps out the windowed log₂ latency
//! histogram the workers recorded into, reads its interpolated
//! [`Histogram::quantile`]`(0.99)`, smooths it with an EWMA, and compares
//! the estimate against *hysteresis watermarks* around the SLO —
//! shedding starts above `high_watermark × slo` and only stops again
//! below `low_watermark × slo`, so a latency estimate hovering at the
//! threshold cannot flap admission open/closed every tick.
//!
//! The elastic scaler is the same shape: a pure `tick` observing ingress
//! pressure and shard busyness, returning a [`ScaleDecision`] the
//! dispatcher applies. Scale-up is eager (one tick of queue pressure);
//! scale-down is lazy (a sustained run of ticks with an idle shard), so a
//! bursty workload ratchets capacity up quickly and releases it slowly.

use sw_des::stats::Histogram;

/// Watermark-based admission policy around a p99 latency SLO.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// The p99 latency objective, in nanoseconds. Must be positive.
    pub slo_p99_ns: u64,
    /// Stop shedding when predicted p99 falls below `low_watermark × slo`.
    pub low_watermark: f64,
    /// Start shedding when predicted p99 rises above `high_watermark × slo`.
    pub high_watermark: f64,
    /// Minimum samples in a window before its quantile updates the
    /// estimate; smaller windows are noise and keep the previous estimate.
    pub min_window: u64,
    /// EWMA weight of the newest window's p99, in `(0, 1]`. 1.0 disables
    /// smoothing entirely.
    pub smoothing: f64,
}

impl AdmissionConfig {
    /// Default watermarks (70% / 100% of the SLO) around a p99 objective.
    pub fn with_slo_p99_ns(slo_p99_ns: u64) -> Self {
        AdmissionConfig {
            slo_p99_ns,
            low_watermark: 0.7,
            high_watermark: 1.0,
            min_window: 16,
            smoothing: 0.5,
        }
    }
}

/// Predicted tail latency of a window: the interpolated p99 of its
/// log₂-bucket histogram (0.0 for an empty window).
pub fn predicted_p99_ns(window: &Histogram) -> f64 {
    window.quantile(0.99)
}

/// The admission decision state machine. Deterministic: feed it the same
/// sequence of windows and it makes the same sequence of decisions.
#[derive(Debug, Clone)]
pub struct AdmissionController {
    config: AdmissionConfig,
    predicted_p99_ns: f64,
    shedding: bool,
}

impl AdmissionController {
    pub fn new(config: AdmissionConfig) -> Self {
        assert!(config.slo_p99_ns > 0, "SLO must be positive");
        assert!(
            config.low_watermark > 0.0 && config.low_watermark <= config.high_watermark,
            "watermarks must satisfy 0 < low <= high"
        );
        assert!(
            config.smoothing > 0.0 && config.smoothing <= 1.0,
            "smoothing must be in (0, 1]"
        );
        AdmissionController {
            config,
            predicted_p99_ns: 0.0,
            shedding: false,
        }
    }

    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// The current EWMA-smoothed p99 estimate, in nanoseconds.
    pub fn predicted_p99_ns(&self) -> f64 {
        self.predicted_p99_ns
    }

    /// Whether admission is currently shedding.
    pub fn shedding(&self) -> bool {
        self.shedding
    }

    /// Feed one tick's latency window; returns the new shedding decision.
    ///
    /// * A window with at least `min_window` samples updates the estimate
    ///   (EWMA, seeded directly by the first real window).
    /// * An *empty* window decays the estimate geometrically toward zero —
    ///   a server that shed itself idle must eventually re-open, otherwise
    ///   shedding is a one-way door (no completions → no samples → no
    ///   evidence the tail recovered).
    /// * A small-but-nonempty window keeps the previous estimate.
    pub fn observe_window(&mut self, window: &Histogram) -> bool {
        let alpha = self.config.smoothing;
        if window.count() >= self.config.min_window {
            let p99 = predicted_p99_ns(window);
            self.predicted_p99_ns = if self.predicted_p99_ns == 0.0 {
                p99
            } else {
                alpha * p99 + (1.0 - alpha) * self.predicted_p99_ns
            };
        } else if window.count() == 0 {
            self.predicted_p99_ns *= 1.0 - alpha;
        }
        let slo = self.config.slo_p99_ns as f64;
        if self.predicted_p99_ns > self.config.high_watermark * slo {
            self.shedding = true;
        } else if self.predicted_p99_ns < self.config.low_watermark * slo {
            self.shedding = false;
        }
        // Between the watermarks: hold the previous decision (hysteresis).
        self.shedding
    }
}

/// Elastic shard-count policy: how many micro-batch workers may be active.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElasticConfig {
    /// Shards always kept active.
    pub min_shards: usize,
    /// Upper bound on active shards (worker channels are provisioned for
    /// this many up front, so scale-up never allocates).
    pub max_shards: usize,
    /// Ingress-queue occupancy fraction that triggers eager scale-up.
    pub scale_up_occupancy: f64,
    /// Consecutive calm ticks (ingress empty, at least one shard idle)
    /// before one shard is deactivated.
    pub scale_down_idle_ticks: u32,
}

impl ElasticConfig {
    /// A fixed-size pool: `n` shards, never scaled.
    pub fn fixed(n: usize) -> Self {
        ElasticConfig {
            min_shards: n,
            max_shards: n,
            scale_up_occupancy: 0.5,
            scale_down_idle_ticks: 3,
        }
    }

    /// An elastic pool ranging over `[min, max]` shards.
    pub fn elastic(min_shards: usize, max_shards: usize) -> Self {
        ElasticConfig {
            min_shards,
            max_shards,
            scale_up_occupancy: 0.5,
            scale_down_idle_ticks: 3,
        }
    }

    pub fn is_elastic(&self) -> bool {
        self.max_shards > self.min_shards
    }
}

/// What the dispatcher should do with the active shard count this tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDecision {
    Hold,
    /// Activate one more shard.
    Up,
    /// Deactivate one shard.
    Down,
}

/// The scale-up/scale-down state machine; pure and clockless (time is
/// whatever cadence the caller invokes [`ElasticScaler::tick`] at).
#[derive(Debug, Clone, Copy)]
pub struct ElasticScaler {
    config: ElasticConfig,
    idle_ticks: u32,
}

impl ElasticScaler {
    pub fn new(config: ElasticConfig) -> Self {
        assert!(config.min_shards >= 1, "need at least one worker shard");
        assert!(
            config.min_shards <= config.max_shards,
            "min_shards must not exceed max_shards"
        );
        assert!(
            config.scale_up_occupancy > 0.0,
            "scale-up occupancy must be positive"
        );
        ElasticScaler {
            config,
            idle_ticks: 0,
        }
    }

    pub fn config(&self) -> &ElasticConfig {
        &self.config
    }

    /// Reset the idle streak — called when the dispatcher scales up out of
    /// band (all shard queues full while routing a batch).
    pub fn note_pressure(&mut self) {
        self.idle_ticks = 0;
    }

    /// One policy tick.
    ///
    /// * `active` — currently active shards.
    /// * `ingress_depth` / `ingress_capacity` — admission-queue occupancy.
    /// * `busy_batches` — batches queued at or executing on active shards
    ///   (plus any the dispatcher is holding back).
    ///
    /// Scale **up** when the ingress queue is pressured or every active
    /// shard already has work. Scale **down** only after
    /// `scale_down_idle_ticks` consecutive ticks in which the ingress
    /// queue was empty and at least one shard had nothing to do.
    pub fn tick(
        &mut self,
        active: usize,
        ingress_depth: usize,
        ingress_capacity: usize,
        busy_batches: usize,
    ) -> ScaleDecision {
        let pressured = ingress_depth > 0
            && ingress_depth as f64 >= self.config.scale_up_occupancy * ingress_capacity as f64;
        if (pressured || busy_batches > active) && active < self.config.max_shards {
            self.idle_ticks = 0;
            return ScaleDecision::Up;
        }
        if ingress_depth == 0 && busy_batches < active && active > self.config.min_shards {
            self.idle_ticks += 1;
            if self.idle_ticks >= self.config.scale_down_idle_ticks {
                self.idle_ticks = 0;
                return ScaleDecision::Down;
            }
        } else {
            self.idle_ticks = 0;
        }
        ScaleDecision::Hold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window_of(samples: &[u64]) -> Histogram {
        let mut h = Histogram::new();
        for &s in samples {
            h.record(s);
        }
        h
    }

    #[test]
    fn sheds_above_high_watermark_and_recovers_below_low() {
        let mut c = AdmissionController::new(AdmissionConfig {
            slo_p99_ns: 1_000,
            low_watermark: 0.5,
            high_watermark: 1.0,
            min_window: 4,
            smoothing: 1.0,
        });
        assert!(!c.shedding());
        assert!(c.observe_window(&window_of(&[4_000; 8])), "4µs ≫ 1µs SLO");
        assert!(c.shedding());
        // Recovery: a fast window pulls the estimate under the low mark.
        assert!(!c.observe_window(&window_of(&[100; 8])));
        assert!(!c.shedding());
    }

    #[test]
    fn hysteresis_holds_between_watermarks() {
        let mut c = AdmissionController::new(AdmissionConfig {
            slo_p99_ns: 1_000,
            low_watermark: 0.5,
            high_watermark: 1.5,
            min_window: 1,
            smoothing: 1.0,
        });
        // ~1.0× SLO sits inside the dead band: decision must not change.
        assert!(!c.observe_window(&window_of(&[1_000; 8])));
        // Blow past the high mark: shed.
        assert!(c.observe_window(&window_of(&[1 << 14; 8])));
        // Back inside the dead band: still shedding (no flap).
        assert!(c.observe_window(&window_of(&[1_000; 8])));
        // Under the low mark: recover.
        assert!(!c.observe_window(&window_of(&[64; 8])));
    }

    #[test]
    fn small_windows_keep_the_estimate_and_empty_windows_decay_it() {
        let mut c = AdmissionController::new(AdmissionConfig {
            slo_p99_ns: 1_000,
            low_watermark: 0.7,
            high_watermark: 1.0,
            min_window: 8,
            smoothing: 0.5,
        });
        assert!(c.observe_window(&window_of(&[1 << 13; 16])));
        let est = c.predicted_p99_ns();
        // Below min_window: estimate (and decision) unchanged.
        assert!(c.observe_window(&window_of(&[1; 2])));
        assert_eq!(c.predicted_p99_ns(), est);
        // Empty windows decay geometrically until the gate re-opens —
        // shedding must not be a one-way door.
        let empty = Histogram::new();
        let mut reopened = false;
        for _ in 0..64 {
            if !c.observe_window(&empty) {
                reopened = true;
                break;
            }
        }
        assert!(reopened, "empty windows never re-opened admission");
        assert!(c.predicted_p99_ns() < est);
    }

    #[test]
    fn scaler_ratchets_up_eagerly_and_down_lazily() {
        let mut s = ElasticScaler::new(ElasticConfig::elastic(1, 4));
        // Pressure on the ingress queue: up, immediately.
        assert_eq!(s.tick(1, 100, 128, 1), ScaleDecision::Up);
        // Every shard busy (more batches than shards): also up.
        assert_eq!(s.tick(2, 0, 128, 3), ScaleDecision::Up);
        // Calm but not idle long enough: hold for N-1 ticks, then down.
        assert_eq!(s.tick(3, 0, 128, 1), ScaleDecision::Hold);
        assert_eq!(s.tick(3, 0, 128, 1), ScaleDecision::Hold);
        assert_eq!(s.tick(3, 0, 128, 1), ScaleDecision::Down);
        // A busy blip resets the idle streak.
        assert_eq!(s.tick(2, 0, 128, 1), ScaleDecision::Hold);
        assert_eq!(s.tick(2, 0, 128, 2), ScaleDecision::Hold);
        assert_eq!(s.tick(2, 0, 128, 1), ScaleDecision::Hold);
        assert_eq!(s.tick(2, 0, 128, 1), ScaleDecision::Hold);
        assert_eq!(s.tick(2, 0, 128, 1), ScaleDecision::Down);
    }

    #[test]
    fn scaler_respects_bounds() {
        let mut s = ElasticScaler::new(ElasticConfig::elastic(1, 2));
        // At max: pressure cannot push above max_shards.
        assert_eq!(s.tick(2, 128, 128, 8), ScaleDecision::Hold);
        // At min: idleness cannot drop below min_shards.
        let mut s = ElasticScaler::new(ElasticConfig::elastic(2, 4));
        for _ in 0..16 {
            assert_eq!(s.tick(2, 0, 128, 0), ScaleDecision::Hold);
        }
    }

    #[test]
    fn fixed_pool_never_scales() {
        let mut s = ElasticScaler::new(ElasticConfig::fixed(2));
        assert!(!s.config().is_elastic());
        assert_eq!(s.tick(2, 128, 128, 10), ScaleDecision::Hold);
        for _ in 0..16 {
            assert_eq!(s.tick(2, 0, 128, 0), ScaleDecision::Hold);
        }
    }
}
