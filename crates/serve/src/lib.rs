//! `swkm-serve` — the model-serving subsystem.
//!
//! Training (the rest of this workspace) answers "where are the
//! centroids?"; this crate answers "which centroid is nearest?" at request
//! time, production-style:
//!
//! * [`artifact`] — versioned, checksummed model artifacts: centroids,
//!   `(n, k, d)` provenance and preprocessing statistics frozen to disk,
//!   with typed errors for corruption, version skew and dtype skew.
//! * [`index`] — the sharded nearest-centroid index: the serving analogue
//!   of the paper's k-partition. Per-shard argmin with the training
//!   kernels, merged with the same lowest-index tie-breaking as
//!   `assign_step`, so a sharded scan is bit-identical to a serial one.
//!   Shards carry liveness flags: a killed shard is detected and scans
//!   re-dispatch to the survivors, marking replies degraded and counting
//!   `shard_failovers`; with every shard down requests fail with a typed
//!   [`error::ServeError::AllShardsDown`] instead of being lost.
//! * [`pipeline`] — a multi-threaded request pipeline over bounded
//!   crossbeam channels: `try_send` admission (typed
//!   [`error::ServeError::Overloaded`] load shedding), adaptive
//!   micro-batching, rayon shard fan-out, graceful drain on shutdown.
//!   The model sits in a hot-swappable [`pipeline::ModelSlot`]: each batch
//!   pins one generation for its whole scan, and
//!   [`pipeline::Server::swap_model`] installs a new generation with zero
//!   downtime — the durable end of that hand-off is the `swkm-store`
//!   crate's versioned model store.
//! * [`metrics`] — throughput counters and per-stage log₂ latency
//!   histograms (shared with the simulator's `sw_des::stats`), exposed as
//!   a printable [`metrics::Snapshot`].
//! * [`loadgen`] — a closed-loop load generator reporting QPS and
//!   p50/p99 latency, used by `swkm serve-bench`.
//!
//! End to end:
//!
//! ```
//! use kmeans_core::{KMeansConfig, Lloyd, Matrix};
//! use swkm_serve::prelude::*;
//!
//! // Train, freeze, reload.
//! let data = Matrix::from_rows(&[
//!     &[0.0f64, 0.0], &[0.5, 0.1], &[9.0, 9.0], &[9.5, 8.9],
//! ]);
//! let fit = Lloyd::run(&data, &KMeansConfig::new(2).with_seed(7)).unwrap();
//! let artifact = ModelArtifact::new(
//!     data.rows() as u64, fit.centroids, fit.iterations as u64,
//!     fit.objective, fit.converged, None,
//! );
//! let bytes = artifact.to_bytes();
//! let reloaded = ModelArtifact::<f64>::from_bytes(&bytes).unwrap();
//!
//! // Serve it.
//! let server = Server::start(
//!     ShardedIndex::from_artifact(&reloaded, 2),
//!     PipelineConfig::default(),
//! );
//! let client = server.client();
//! let hot = client.predict(vec![9.1, 9.1]).unwrap();
//! let cold = client.predict(vec![0.2, 0.0]).unwrap();
//! assert_ne!(hot.label, cold.label);
//! drop(client);
//! let snapshot = server.shutdown();
//! assert_eq!(snapshot.completed, 2);
//! ```

pub mod artifact;
pub mod error;
pub mod index;
pub mod loadgen;
pub mod metrics;
pub mod pipeline;

pub use artifact::{ArtifactError, ModelArtifact, ModelMeta, FORMAT_VERSION, MAGIC};
pub use error::ServeError;
pub use index::{BatchOutcome, Kernel, ShardedIndex};
pub use loadgen::{run_closed_loop, LoadGenConfig, LoadReport};
pub use metrics::{ServeMetrics, Snapshot, EXEMPLAR_K};
pub use pipeline::{Client, ModelSlot, PipelineConfig, Prediction, ServeTracing, Server};

/// One-stop imports for serving call sites.
pub mod prelude {
    pub use crate::artifact::{ArtifactError, ModelArtifact, ModelMeta};
    pub use crate::error::ServeError;
    pub use crate::index::{BatchOutcome, Kernel, ShardedIndex};
    pub use crate::loadgen::{run_closed_loop, LoadGenConfig, LoadReport};
    pub use crate::metrics::Snapshot;
    pub use crate::pipeline::{
        Client, ModelSlot, PipelineConfig, Prediction, ServeTracing, Server,
    };
}
