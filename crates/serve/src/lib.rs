//! `swkm-serve` — the model-serving subsystem.
//!
//! Training (the rest of this workspace) answers "where are the
//! centroids?"; this crate answers "which centroid is nearest?" at request
//! time, production-style:
//!
//! * [`artifact`] — versioned, checksummed model artifacts: centroids,
//!   `(n, k, d)` provenance and preprocessing statistics frozen to disk,
//!   with typed errors for corruption, version skew and dtype skew.
//! * [`index`] — the sharded nearest-centroid index: the serving analogue
//!   of the paper's k-partition. Per-shard argmin with the training
//!   kernels, merged with the same lowest-index tie-breaking as
//!   `assign_step`, so a sharded scan is bit-identical to a serial one.
//!   Shards carry liveness flags: a killed shard is detected and scans
//!   re-dispatch to the survivors, marking replies degraded and counting
//!   `shard_failovers`; with every shard down requests fail with a typed
//!   [`error::ServeError::AllShardsDown`] instead of being lost.
//! * [`pipeline`] — the public handles (server, client, hot-swappable
//!   [`pipeline::ModelSlot`]) around the event-driven serve core:
//!   `try_send` admission (typed [`error::ServeError::Overloaded`] load
//!   shedding), adaptive micro-batching, rayon shard fan-out, graceful
//!   drain on shutdown. Each batch pins one model generation for its
//!   whole scan, and [`pipeline::Server::swap_model`] installs a new
//!   generation with zero downtime — the durable end of that hand-off is
//!   the `swkm-store` crate's versioned model store.
//! * [`dispatch`] — the select-based dispatcher behind the pipeline: one
//!   thread multiplexes client ingress, shard completions, control
//!   notifications and policy ticks via `crossbeam_channel::Select`,
//!   routes micro-batches to elastic shard workers (lazy spawn, eager
//!   scale-up, lazy scale-down, work stealing between peers) and audits
//!   every channel for stranded requests at shutdown.
//! * [`admission`] — SLO-aware admission control as pure, property-tested
//!   policy: predicted p99 from windowed log₂ histograms, EWMA smoothing
//!   and hysteresis watermarks ([`error::ServeError::SloShed`]), plus the
//!   elastic scale-up/down state machine.
//! * [`metrics`] — throughput counters and per-stage log₂ latency
//!   histograms (shared with the simulator's `sw_des::stats`), exposed as
//!   a printable [`metrics::Snapshot`].
//! * [`loadgen`] — a closed-loop load generator reporting QPS and
//!   p50/p95/p99 latency, used by `swkm serve-bench`, plus the
//!   deterministic load-ramp driver behind `serve-bench --ramp`.
//!
//! End to end:
//!
//! ```
//! use kmeans_core::{KMeansConfig, Lloyd, Matrix};
//! use swkm_serve::prelude::*;
//!
//! // Train, freeze, reload.
//! let data = Matrix::from_rows(&[
//!     &[0.0f64, 0.0], &[0.5, 0.1], &[9.0, 9.0], &[9.5, 8.9],
//! ]);
//! let fit = Lloyd::run(&data, &KMeansConfig::new(2).with_seed(7)).unwrap();
//! let artifact = ModelArtifact::new(
//!     data.rows() as u64, fit.centroids, fit.iterations as u64,
//!     fit.objective, fit.converged, None,
//! );
//! let bytes = artifact.to_bytes();
//! let reloaded = ModelArtifact::<f64>::from_bytes(&bytes).unwrap();
//!
//! // Serve it.
//! let server = Server::start(
//!     ShardedIndex::from_artifact(&reloaded, 2),
//!     PipelineConfig::default(),
//! );
//! let client = server.client();
//! let hot = client.predict(vec![9.1, 9.1]).unwrap();
//! let cold = client.predict(vec![0.2, 0.0]).unwrap();
//! assert_ne!(hot.label, cold.label);
//! drop(client);
//! let snapshot = server.shutdown();
//! assert_eq!(snapshot.completed, 2);
//! ```

pub mod admission;
pub mod artifact;
pub mod dispatch;
pub mod error;
pub mod index;
pub mod loadgen;
pub mod metrics;
pub mod pipeline;

pub use admission::{
    predicted_p99_ns, AdmissionConfig, AdmissionController, ElasticConfig, ElasticScaler,
    ScaleDecision,
};
pub use artifact::{ArtifactError, ModelArtifact, ModelMeta, FORMAT_VERSION, MAGIC};
pub use dispatch::DispatchConfig;
pub use error::ServeError;
pub use index::{BatchOutcome, Kernel, ShardedIndex};
pub use loadgen::{
    run_closed_loop, run_ramp, LoadGenConfig, LoadReport, RampConfig, RampPhase, RampReport,
};
pub use metrics::{ServeMetrics, Snapshot, EXEMPLAR_K};
pub use pipeline::{Client, ModelSlot, PipelineConfig, Prediction, ServeTracing, Server};

/// One-stop imports for serving call sites.
pub mod prelude {
    pub use crate::admission::{
        AdmissionConfig, AdmissionController, ElasticConfig, ElasticScaler, ScaleDecision,
    };
    pub use crate::artifact::{ArtifactError, ModelArtifact, ModelMeta};
    pub use crate::dispatch::DispatchConfig;
    pub use crate::error::ServeError;
    pub use crate::index::{BatchOutcome, Kernel, ShardedIndex};
    pub use crate::loadgen::{
        run_closed_loop, run_ramp, LoadGenConfig, LoadReport, RampConfig, RampPhase, RampReport,
    };
    pub use crate::metrics::Snapshot;
    pub use crate::pipeline::{
        Client, ModelSlot, PipelineConfig, Prediction, ServeTracing, Server,
    };
}
