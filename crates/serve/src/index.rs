//! Sharded nearest-centroid index — the serving analogue of the paper's
//! k-partition. The centroid set is split into contiguous shards (the same
//! `split_range` arithmetic Level 2 uses to spread centroids over CPE
//! groups); a query fans out across shards in parallel, each shard returns
//! its local argmin, and the partial results merge with the same
//! lowest-index tie-breaking the training assign step uses — so sharded
//! serving with the default kernel is *bit-identical* to a serial full
//! scan.
//!
//! Per-shard scoring routes through the shared [`AssignPlan`] from
//! `kmeans-core`, so serving uses exactly the kernels training uses:
//! [`Kernel::Scalar`] (exact subtract-square, the default),
//! [`Kernel::Expanded`] (norm expansion, previously `NormTrick`),
//! [`Kernel::Tiled`] (LDM-blocked expansion with the 4×4 micro kernel) and
//! [`Kernel::Gemm`] (cache-blocked `−2·X·Cᵀ` over packed panels, bitwise
//! equal to `Tiled`).

use crate::artifact::ModelArtifact;
use crate::error::ServeError;
use hier_kmeans::partition::split_range;
use kmeans_core::{AssignPlan, Matrix, Scalar};
use rayon::prelude::*;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Distance kernel used per shard — the training assign kernel, re-exported.
/// The legacy serving names still parse: `exact` → `Scalar`, `norm-trick`
/// → `Expanded`.
pub use kmeans_core::AssignKernel as Kernel;

/// A single shard's claim on the global argmin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardVote<S> {
    /// Global centroid index of the shard-local winner.
    pub index: usize,
    /// The winner's comparison key (squared distance for [`Kernel::Scalar`];
    /// the expansion `‖x‖² + ‖c‖² − 2·x·c` for [`Kernel::Expanded`] /
    /// [`Kernel::Tiled`] — keys are comparable across shards either way
    /// because `‖x‖²` is computed identically for every shard's vote).
    pub key: S,
}

/// Labels for a batch scanned over the surviving shards, plus how much of
/// the index had to be routed around.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Nearest surviving centroid per row.
    pub labels: Vec<u32>,
    /// Dead shards the scan skipped; nonzero means the labels are a
    /// best-effort answer over a subset of the centroids (degraded).
    pub skipped_shards: usize,
}

/// Immutable, thread-safe nearest-centroid index over sharded centroids.
///
/// Shards carry a liveness flag: [`ShardedIndex::kill_shard`] simulates a
/// shard crash, after which scans re-dispatch to the survivors and report
/// the answer as degraded (see [`BatchOutcome::skipped_shards`]).
#[derive(Debug, Clone)]
pub struct ShardedIndex<S: Scalar> {
    centroids: Matrix<S>,
    shards: Vec<Range<usize>>,
    /// The prepared assign pass (kernel + centroid norms + tile shape),
    /// built once at index construction and amortised over every query.
    plan: AssignPlan<S>,
    /// Per-shard liveness, shared across clones so a kill is observed by
    /// every handle onto the same index.
    alive: Arc<Vec<AtomicBool>>,
}

impl<S: Scalar> ShardedIndex<S> {
    /// Build an index over `num_shards` contiguous centroid shards using
    /// the default [`Kernel::Scalar`]. Shard count is clamped to `k`, so
    /// over-sharding a small model is harmless.
    pub fn new(centroids: Matrix<S>, num_shards: usize) -> Self {
        assert!(centroids.rows() > 0, "index needs at least one centroid");
        let parts = num_shards.clamp(1, centroids.rows());
        let shards: Vec<Range<usize>> = (0..parts)
            .map(|i| split_range(centroids.rows(), parts, i))
            .filter(|r| !r.is_empty())
            .collect();
        let plan = AssignPlan::new(Kernel::Scalar, &centroids);
        let alive = Arc::new(shards.iter().map(|_| AtomicBool::new(true)).collect());
        ShardedIndex {
            centroids,
            shards,
            plan,
            alive,
        }
    }

    /// Build from a validated artifact.
    pub fn from_artifact(artifact: &ModelArtifact<S>, num_shards: usize) -> Self {
        Self::new(artifact.centroids.clone(), num_shards)
    }

    /// Switch the per-shard kernel; `Expanded`/`Tiled`/`Gemm` precompute
    /// centroid norms (and, for `Gemm`, packed centroid panels) once here,
    /// amortised over every subsequent query.
    pub fn with_kernel(mut self, kernel: Kernel) -> Self {
        self.plan = AssignPlan::new(kernel, &self.centroids);
        self
    }

    pub fn k(&self) -> usize {
        self.centroids.rows()
    }

    pub fn dim(&self) -> usize {
        self.centroids.cols()
    }

    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    pub fn kernel(&self) -> Kernel {
        self.plan.kernel()
    }

    pub fn centroids(&self) -> &Matrix<S> {
        &self.centroids
    }

    /// Simulate a shard crash: scans stop consulting the shard and report
    /// degraded answers over the survivors. Returns whether the shard was
    /// alive (idempotent; out-of-range indices are ignored).
    pub fn kill_shard(&self, shard: usize) -> bool {
        self.alive
            .get(shard)
            .is_some_and(|a| a.swap(false, Ordering::SeqCst))
    }

    /// Shards still answering queries.
    pub fn alive_shards(&self) -> usize {
        self.alive
            .iter()
            .filter(|a| a.load(Ordering::SeqCst))
            .count()
    }

    /// Snapshot the surviving shard ranges (one liveness read per shard, so
    /// a whole batch sees one consistent crash picture).
    fn survivors(&self) -> Vec<Range<usize>> {
        self.shards
            .iter()
            .zip(self.alive.iter())
            .filter(|(_, a)| a.load(Ordering::SeqCst))
            .map(|(s, _)| s.clone())
            .collect()
    }

    /// Shard-local argmin with globally comparable key.
    fn shard_vote(&self, sample: &[S], shard: &Range<usize>) -> ShardVote<S> {
        let (index, key) =
            self.plan
                .assign_one(sample, &self.centroids, shard.clone(), shard.start);
        ShardVote {
            index: index as usize,
            key,
        }
    }

    /// Merge shard votes in shard order: strictly smaller key wins, ties
    /// keep the earlier (lower-index) vote — the `assign_step` convention.
    /// `None` means no shard voted (every shard is down) — surfaced as a
    /// typed [`ServeError::AllShardsDown`] by the callers, never a panic.
    fn merge_votes(votes: impl IntoIterator<Item = ShardVote<S>>) -> Option<u32> {
        let mut it = votes.into_iter();
        let mut best = it.next()?;
        for vote in it {
            if vote.key < best.key {
                best = vote;
            }
        }
        Some(best.index as u32)
    }

    /// Nearest-centroid label for a single sample (serial over the
    /// surviving shards), with a degraded marker when dead shards were
    /// skipped.
    pub fn try_assign_one(&self, sample: &[S]) -> Result<(u32, bool), ServeError> {
        assert_eq!(sample.len(), self.dim(), "dimension mismatch");
        let survivors = self.survivors();
        let label = Self::merge_votes(survivors.iter().map(|s| self.shard_vote(sample, s))).ok_or(
            ServeError::AllShardsDown {
                shards: self.shards.len(),
            },
        )?;
        Ok((label, survivors.len() < self.shards.len()))
    }

    /// Nearest-centroid label for a single sample. Panics if every shard
    /// is down; failure-aware callers use [`ShardedIndex::try_assign_one`].
    pub fn assign_one(&self, sample: &[S]) -> u32 {
        self.try_assign_one(sample)
            .unwrap_or_else(|e| panic!("index scan failed: {e}"))
            .0
    }

    /// Labels for a whole batch over the surviving shards, fanning the
    /// shard scans out over the rayon pool: each shard runs the batched
    /// kernel over every row independently, then the per-row votes merge
    /// in shard order. Work per shard is `rows × shard_k × d`, the same
    /// total as a serial scan. Dead shards are skipped (re-dispatch to
    /// survivors) and reported via [`BatchOutcome::skipped_shards`].
    pub fn try_assign_batch(&self, batch: &Matrix<S>) -> Result<BatchOutcome, ServeError> {
        self.try_assign_batch_traced(batch, None)
    }

    /// [`ShardedIndex::try_assign_batch`] with an optional event tracer:
    /// each surviving shard's scan is recorded as an `assign_shard` span
    /// (arg = shard index) tagged with `trace_id`, so a traced request's
    /// pipeline shows the per-shard fan-out inside its `execute` window.
    pub fn try_assign_batch_traced(
        &self,
        batch: &Matrix<S>,
        tracer: Option<(&swkm_obs::Tracer, u64)>,
    ) -> Result<BatchOutcome, ServeError> {
        assert_eq!(batch.cols(), self.dim(), "dimension mismatch");
        let survivors = self.survivors();
        let skipped_shards = self.shards.len() - survivors.len();
        if survivors.is_empty() {
            return Err(ServeError::AllShardsDown {
                shards: self.shards.len(),
            });
        }
        if batch.rows() == 0 {
            return Ok(BatchOutcome {
                labels: Vec::new(),
                skipped_shards,
            });
        }
        let indexed: Vec<(usize, &std::ops::Range<usize>)> = survivors.iter().enumerate().collect();
        let per_shard: Vec<Vec<(u32, S)>> = indexed
            .par_iter()
            .map(|&(shard_idx, shard)| {
                let start = tracer.map(|(t, _)| t.begin());
                let mut votes = Vec::with_capacity(batch.rows());
                self.plan.assign_batch_into(
                    batch,
                    0..batch.rows(),
                    &self.centroids,
                    shard.clone(),
                    shard.start,
                    &mut votes,
                );
                if let (Some((t, trace_id)), Some(start)) = (tracer, start) {
                    t.complete_full("assign_shard", start, trace_id, "shard", shard_idx as u64);
                }
                votes
            })
            .collect();
        let labels = (0..batch.rows())
            .map(|i| {
                Self::merge_votes(per_shard.iter().map(|votes| ShardVote {
                    index: votes[i].0 as usize,
                    key: votes[i].1,
                }))
                .expect("survivors is non-empty")
            })
            .collect();
        Ok(BatchOutcome {
            labels,
            skipped_shards,
        })
    }

    /// Labels for a whole batch. Panics if every shard is down;
    /// failure-aware callers use [`ShardedIndex::try_assign_batch`].
    pub fn assign_batch(&self, batch: &Matrix<S>) -> Vec<u32> {
        self.try_assign_batch(batch)
            .unwrap_or_else(|e| panic!("index scan failed: {e}"))
            .labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmeans_core::argmin_centroid;

    fn grid_centroids(k: usize, d: usize) -> Matrix<f64> {
        let data = (0..k * d).map(|i| (i % 17) as f64 * 0.25 - 2.0).collect();
        Matrix::from_vec(k, d, data)
    }

    #[test]
    fn sharded_matches_serial_scan_exactly() {
        let centroids = grid_centroids(23, 7);
        let samples = grid_centroids(50, 7);
        for shards in [1, 2, 3, 8, 23, 64] {
            let index = ShardedIndex::new(centroids.clone(), shards);
            let labels = index.assign_batch(&samples);
            for (i, row) in samples.iter_rows().enumerate() {
                let (serial, _) = argmin_centroid(row, &centroids);
                assert_eq!(labels[i], serial as u32, "shards={shards} row={i}");
            }
        }
    }

    #[test]
    fn ties_break_to_lowest_index_across_shard_boundaries() {
        // Duplicate centroids in different shards: the lower global index
        // must win, exactly as in a serial scan — under every kernel.
        let centroids = Matrix::from_rows(&[&[5.0f64, 5.0], &[1.0, 1.0], &[1.0, 1.0], &[9.0, 9.0]]);
        for kernel in Kernel::ALL {
            for shards in [1, 2, 4] {
                let index = ShardedIndex::new(centroids.clone(), shards).with_kernel(kernel);
                assert_eq!(index.assign_one(&[1.0, 1.0]), 1, "{kernel} shards={shards}");
            }
        }
    }

    #[test]
    fn expansion_kernels_agree_on_well_separated_data() {
        let centroids = Matrix::from_rows(&[&[0.0f64, 0.0], &[10.0, 0.0], &[0.0, 10.0]]);
        let exact = ShardedIndex::new(centroids.clone(), 2);
        for kernel in [Kernel::Expanded, Kernel::Tiled, Kernel::Gemm] {
            let fast = ShardedIndex::new(centroids.clone(), 2).with_kernel(kernel);
            assert_eq!(fast.kernel(), kernel);
            for sample in [[1.0, 1.0], [9.0, 1.0], [1.0, 9.0], [-3.0, -3.0]] {
                assert_eq!(
                    exact.assign_one(&sample),
                    fast.assign_one(&sample),
                    "{kernel}"
                );
            }
        }
    }

    #[test]
    fn batch_matches_per_sample_path_under_every_kernel() {
        let centroids = grid_centroids(13, 5);
        let samples = grid_centroids(40, 5);
        for kernel in Kernel::ALL {
            let index = ShardedIndex::new(centroids.clone(), 3).with_kernel(kernel);
            let batched = index.assign_batch(&samples);
            for (i, row) in samples.iter_rows().enumerate() {
                assert_eq!(batched[i], index.assign_one(row), "{kernel} row={i}");
            }
        }
    }

    #[test]
    fn over_sharding_clamps_to_k() {
        let index = ShardedIndex::new(grid_centroids(3, 2), 100);
        assert_eq!(index.num_shards(), 3);
        assert_eq!(index.k(), 3);
    }

    #[test]
    fn single_centroid_always_wins() {
        let index = ShardedIndex::new(Matrix::from_rows(&[&[1.0f64, 2.0]]), 4);
        assert_eq!(index.assign_one(&[100.0, -50.0]), 0);
        assert_eq!(index.num_shards(), 1);
    }

    #[test]
    fn empty_batch_is_fine() {
        let index = ShardedIndex::new(grid_centroids(4, 3), 2);
        assert!(index.assign_batch(&Matrix::<f64>::zeros(0, 3)).is_empty());
    }

    #[test]
    fn killed_shard_fails_over_to_survivors() {
        // Two well-separated centroids in separate shards: killing the
        // shard that owns the true winner re-dispatches to the survivor,
        // which answers with its own (farther) centroid, marked degraded.
        let centroids = Matrix::from_rows(&[&[0.0f64, 0.0], &[10.0, 10.0]]);
        let index = ShardedIndex::new(centroids, 2);
        assert_eq!(index.num_shards(), 2);
        assert_eq!(index.try_assign_one(&[0.1, 0.1]).unwrap(), (0, false));
        assert!(index.kill_shard(0), "first kill reports the live shard");
        assert!(!index.kill_shard(0), "kill is idempotent");
        assert_eq!(index.alive_shards(), 1);
        assert_eq!(index.try_assign_one(&[0.1, 0.1]).unwrap(), (1, true));
        let out = index
            .try_assign_batch(&Matrix::from_rows(&[&[0.1f64, 0.1], &[9.0, 9.0]]))
            .unwrap();
        assert_eq!(out.labels, vec![1, 1]);
        assert_eq!(out.skipped_shards, 1);
    }

    #[test]
    fn all_shards_down_is_a_typed_error_not_a_panic() {
        // Regression for the unwrap()/expect() audit: merge_votes used to
        // `expect("at least one shard")`; with every shard dead it must
        // now surface ServeError::AllShardsDown.
        let index = ShardedIndex::new(grid_centroids(4, 3), 2);
        index.kill_shard(0);
        index.kill_shard(1);
        assert_eq!(index.alive_shards(), 0);
        let err = index.try_assign_one(&[0.0, 0.0, 0.0]).unwrap_err();
        assert_eq!(err, crate::error::ServeError::AllShardsDown { shards: 2 });
        let err = index
            .try_assign_batch(&Matrix::from_rows(&[&[0.0f64, 0.0, 0.0]]))
            .unwrap_err();
        assert_eq!(err, crate::error::ServeError::AllShardsDown { shards: 2 });
    }

    #[test]
    fn kills_propagate_through_clones() {
        let index = ShardedIndex::new(grid_centroids(4, 2), 2);
        let clone = index.clone();
        index.kill_shard(1);
        assert_eq!(clone.alive_shards(), 1);
    }
}
