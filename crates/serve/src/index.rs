//! Sharded nearest-centroid index — the serving analogue of the paper's
//! k-partition. The centroid set is split into contiguous shards (the same
//! `split_range` arithmetic Level 2 uses to spread centroids over CPE
//! groups); a query fans out across shards in parallel, each shard returns
//! its local argmin, and the partial results merge with the same
//! lowest-index tie-breaking the training assign step uses — so sharded
//! serving with the default kernel is *bit-identical* to a serial full
//! scan.
//!
//! Per-shard scoring routes through the shared [`AssignPlan`] from
//! `kmeans-core`, so serving uses exactly the kernels training uses:
//! [`Kernel::Scalar`] (exact subtract-square, the default),
//! [`Kernel::Expanded`] (norm expansion, previously `NormTrick`) and
//! [`Kernel::Tiled`] (LDM-blocked expansion with the 4×4 micro kernel).

use crate::artifact::ModelArtifact;
use hier_kmeans::partition::split_range;
use kmeans_core::{AssignPlan, Matrix, Scalar};
use rayon::prelude::*;
use std::ops::Range;

/// Distance kernel used per shard — the training assign kernel, re-exported.
/// The legacy serving names still parse: `exact` → `Scalar`, `norm-trick`
/// → `Expanded`.
pub use kmeans_core::AssignKernel as Kernel;

/// A single shard's claim on the global argmin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardVote<S> {
    /// Global centroid index of the shard-local winner.
    pub index: usize,
    /// The winner's comparison key (squared distance for [`Kernel::Scalar`];
    /// the expansion `‖x‖² + ‖c‖² − 2·x·c` for [`Kernel::Expanded`] /
    /// [`Kernel::Tiled`] — keys are comparable across shards either way
    /// because `‖x‖²` is computed identically for every shard's vote).
    pub key: S,
}

/// Immutable, thread-safe nearest-centroid index over sharded centroids.
#[derive(Debug, Clone)]
pub struct ShardedIndex<S: Scalar> {
    centroids: Matrix<S>,
    shards: Vec<Range<usize>>,
    /// The prepared assign pass (kernel + centroid norms + tile shape),
    /// built once at index construction and amortised over every query.
    plan: AssignPlan<S>,
}

impl<S: Scalar> ShardedIndex<S> {
    /// Build an index over `num_shards` contiguous centroid shards using
    /// the default [`Kernel::Scalar`]. Shard count is clamped to `k`, so
    /// over-sharding a small model is harmless.
    pub fn new(centroids: Matrix<S>, num_shards: usize) -> Self {
        assert!(centroids.rows() > 0, "index needs at least one centroid");
        let parts = num_shards.clamp(1, centroids.rows());
        let shards = (0..parts)
            .map(|i| split_range(centroids.rows(), parts, i))
            .filter(|r| !r.is_empty())
            .collect();
        let plan = AssignPlan::new(Kernel::Scalar, &centroids);
        ShardedIndex {
            centroids,
            shards,
            plan,
        }
    }

    /// Build from a validated artifact.
    pub fn from_artifact(artifact: &ModelArtifact<S>, num_shards: usize) -> Self {
        Self::new(artifact.centroids.clone(), num_shards)
    }

    /// Switch the per-shard kernel; `Expanded`/`Tiled` precompute centroid
    /// norms once here, amortised over every subsequent query.
    pub fn with_kernel(mut self, kernel: Kernel) -> Self {
        self.plan = AssignPlan::new(kernel, &self.centroids);
        self
    }

    pub fn k(&self) -> usize {
        self.centroids.rows()
    }

    pub fn dim(&self) -> usize {
        self.centroids.cols()
    }

    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    pub fn kernel(&self) -> Kernel {
        self.plan.kernel()
    }

    pub fn centroids(&self) -> &Matrix<S> {
        &self.centroids
    }

    /// Shard-local argmin with globally comparable key.
    fn shard_vote(&self, sample: &[S], shard: &Range<usize>) -> ShardVote<S> {
        let (index, key) =
            self.plan
                .assign_one(sample, &self.centroids, shard.clone(), shard.start);
        ShardVote {
            index: index as usize,
            key,
        }
    }

    /// Merge shard votes in shard order: strictly smaller key wins, ties
    /// keep the earlier (lower-index) vote — the `assign_step` convention.
    fn merge_votes(votes: impl IntoIterator<Item = ShardVote<S>>) -> u32 {
        let mut it = votes.into_iter();
        let mut best = it.next().expect("at least one shard");
        for vote in it {
            if vote.key < best.key {
                best = vote;
            }
        }
        best.index as u32
    }

    /// Nearest-centroid label for a single sample (serial over shards).
    pub fn assign_one(&self, sample: &[S]) -> u32 {
        assert_eq!(sample.len(), self.dim(), "dimension mismatch");
        Self::merge_votes(self.shards.iter().map(|s| self.shard_vote(sample, s)))
    }

    /// Labels for a whole batch, fanning the shard scans out over the
    /// rayon pool: each shard runs the batched kernel over every row
    /// independently, then the per-row votes merge in shard order. Work
    /// per shard is `rows × shard_k × d`, the same total as a serial scan.
    pub fn assign_batch(&self, batch: &Matrix<S>) -> Vec<u32> {
        assert_eq!(batch.cols(), self.dim(), "dimension mismatch");
        if batch.rows() == 0 {
            return Vec::new();
        }
        let per_shard: Vec<Vec<(u32, S)>> = self
            .shards
            .par_iter()
            .map(|shard| {
                let mut votes = Vec::with_capacity(batch.rows());
                self.plan.assign_batch_into(
                    batch,
                    0..batch.rows(),
                    &self.centroids,
                    shard.clone(),
                    shard.start,
                    &mut votes,
                );
                votes
            })
            .collect();
        (0..batch.rows())
            .map(|i| {
                Self::merge_votes(per_shard.iter().map(|votes| ShardVote {
                    index: votes[i].0 as usize,
                    key: votes[i].1,
                }))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmeans_core::argmin_centroid;

    fn grid_centroids(k: usize, d: usize) -> Matrix<f64> {
        let data = (0..k * d).map(|i| (i % 17) as f64 * 0.25 - 2.0).collect();
        Matrix::from_vec(k, d, data)
    }

    #[test]
    fn sharded_matches_serial_scan_exactly() {
        let centroids = grid_centroids(23, 7);
        let samples = grid_centroids(50, 7);
        for shards in [1, 2, 3, 8, 23, 64] {
            let index = ShardedIndex::new(centroids.clone(), shards);
            let labels = index.assign_batch(&samples);
            for (i, row) in samples.iter_rows().enumerate() {
                let (serial, _) = argmin_centroid(row, &centroids);
                assert_eq!(labels[i], serial as u32, "shards={shards} row={i}");
            }
        }
    }

    #[test]
    fn ties_break_to_lowest_index_across_shard_boundaries() {
        // Duplicate centroids in different shards: the lower global index
        // must win, exactly as in a serial scan — under every kernel.
        let centroids = Matrix::from_rows(&[&[5.0f64, 5.0], &[1.0, 1.0], &[1.0, 1.0], &[9.0, 9.0]]);
        for kernel in Kernel::ALL {
            for shards in [1, 2, 4] {
                let index = ShardedIndex::new(centroids.clone(), shards).with_kernel(kernel);
                assert_eq!(index.assign_one(&[1.0, 1.0]), 1, "{kernel} shards={shards}");
            }
        }
    }

    #[test]
    fn expansion_kernels_agree_on_well_separated_data() {
        let centroids = Matrix::from_rows(&[&[0.0f64, 0.0], &[10.0, 0.0], &[0.0, 10.0]]);
        let exact = ShardedIndex::new(centroids.clone(), 2);
        for kernel in [Kernel::Expanded, Kernel::Tiled] {
            let fast = ShardedIndex::new(centroids.clone(), 2).with_kernel(kernel);
            assert_eq!(fast.kernel(), kernel);
            for sample in [[1.0, 1.0], [9.0, 1.0], [1.0, 9.0], [-3.0, -3.0]] {
                assert_eq!(
                    exact.assign_one(&sample),
                    fast.assign_one(&sample),
                    "{kernel}"
                );
            }
        }
    }

    #[test]
    fn batch_matches_per_sample_path_under_every_kernel() {
        let centroids = grid_centroids(13, 5);
        let samples = grid_centroids(40, 5);
        for kernel in Kernel::ALL {
            let index = ShardedIndex::new(centroids.clone(), 3).with_kernel(kernel);
            let batched = index.assign_batch(&samples);
            for (i, row) in samples.iter_rows().enumerate() {
                assert_eq!(batched[i], index.assign_one(row), "{kernel} row={i}");
            }
        }
    }

    #[test]
    fn over_sharding_clamps_to_k() {
        let index = ShardedIndex::new(grid_centroids(3, 2), 100);
        assert_eq!(index.num_shards(), 3);
        assert_eq!(index.k(), 3);
    }

    #[test]
    fn single_centroid_always_wins() {
        let index = ShardedIndex::new(Matrix::from_rows(&[&[1.0f64, 2.0]]), 4);
        assert_eq!(index.assign_one(&[100.0, -50.0]), 0);
        assert_eq!(index.num_shards(), 1);
    }

    #[test]
    fn empty_batch_is_fine() {
        let index = ShardedIndex::new(grid_centroids(4, 3), 2);
        assert!(index.assign_batch(&Matrix::<f64>::zeros(0, 3)).is_empty());
    }
}
