//! Sharded nearest-centroid index — the serving analogue of the paper's
//! k-partition. The centroid set is split into contiguous shards (the same
//! `split_range` arithmetic Level 2 uses to spread centroids over CPE
//! groups); a query fans out across shards in parallel, each shard returns
//! its local argmin, and the partial results merge with the same
//! lowest-index tie-breaking the training assign step uses — so sharded
//! serving is *bit-identical* to a serial full scan.

use crate::artifact::ModelArtifact;
use hier_kmeans::partition::split_range;
use kmeans_core::distance::{argmin_centroid_range, dot_unrolled};
use kmeans_core::{Matrix, Scalar};
use rayon::prelude::*;
use std::ops::Range;

/// Distance kernel used per shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Kernel {
    /// Plain squared-Euclidean scan (`sq_euclidean_unrolled`). Produces
    /// exactly the same labels as the serial training assign step, bit for
    /// bit — the default, and what the equivalence tests pin down.
    #[default]
    Exact,
    /// The norm expansion `‖x−c‖² = ‖x‖² + ‖c‖² − 2·x·c` with centroid
    /// norms precomputed at index build time (`dot_unrolled`). One dot
    /// product per centroid instead of subtract-square — faster for large
    /// `d`, but a numerically different expression, so labels can differ
    /// from `Exact` when two centroids are near-equidistant. Opt-in.
    NormTrick,
}

/// A single shard's claim on the global argmin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardVote<S> {
    /// Global centroid index of the shard-local winner.
    pub index: usize,
    /// The winner's comparison key (squared distance for [`Kernel::Exact`];
    /// the norm-trick score `‖c‖² − 2·x·c` for [`Kernel::NormTrick`] —
    /// keys are comparable across shards either way because `‖x‖²` is
    /// constant per query).
    pub key: S,
}

/// Immutable, thread-safe nearest-centroid index over sharded centroids.
#[derive(Debug, Clone)]
pub struct ShardedIndex<S: Scalar> {
    centroids: Matrix<S>,
    shards: Vec<Range<usize>>,
    /// `‖c_j‖²` for every centroid, present only for [`Kernel::NormTrick`].
    norms: Option<Vec<S>>,
    kernel: Kernel,
}

impl<S: Scalar> ShardedIndex<S> {
    /// Build an index over `num_shards` contiguous centroid shards using
    /// the default [`Kernel::Exact`]. Shard count is clamped to `k`, so
    /// over-sharding a small model is harmless.
    pub fn new(centroids: Matrix<S>, num_shards: usize) -> Self {
        assert!(centroids.rows() > 0, "index needs at least one centroid");
        let parts = num_shards.clamp(1, centroids.rows());
        let shards = (0..parts)
            .map(|i| split_range(centroids.rows(), parts, i))
            .filter(|r| !r.is_empty())
            .collect();
        ShardedIndex {
            centroids,
            shards,
            norms: None,
            kernel: Kernel::Exact,
        }
    }

    /// Build from a validated artifact.
    pub fn from_artifact(artifact: &ModelArtifact<S>, num_shards: usize) -> Self {
        Self::new(artifact.centroids.clone(), num_shards)
    }

    /// Switch the per-shard kernel; `NormTrick` precomputes centroid norms
    /// once here, amortised over every subsequent query.
    pub fn with_kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self.norms = match kernel {
            Kernel::Exact => None,
            Kernel::NormTrick => Some(
                (0..self.centroids.rows())
                    .map(|j| {
                        let row = self.centroids.row(j);
                        dot_unrolled(row, row)
                    })
                    .collect(),
            ),
        };
        self
    }

    pub fn k(&self) -> usize {
        self.centroids.rows()
    }

    pub fn dim(&self) -> usize {
        self.centroids.cols()
    }

    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    pub fn centroids(&self) -> &Matrix<S> {
        &self.centroids
    }

    /// Shard-local argmin with globally comparable key.
    fn shard_vote(&self, sample: &[S], shard: &Range<usize>) -> ShardVote<S> {
        match &self.norms {
            None => {
                let (index, key) =
                    argmin_centroid_range(sample, &self.centroids, shard.clone(), shard.start);
                ShardVote { index, key }
            }
            Some(norms) => {
                let two = S::from_f64(2.0);
                let mut best = ShardVote {
                    index: shard.start,
                    key: norms[shard.start]
                        - two * dot_unrolled(sample, self.centroids.row(shard.start)),
                };
                for (j, &norm) in norms
                    .iter()
                    .enumerate()
                    .take(shard.end)
                    .skip(shard.start + 1)
                {
                    let key = norm - two * dot_unrolled(sample, self.centroids.row(j));
                    if key < best.key {
                        best = ShardVote { index: j, key };
                    }
                }
                best
            }
        }
    }

    /// Merge shard votes in shard order: strictly smaller key wins, ties
    /// keep the earlier (lower-index) vote — the `assign_step` convention.
    fn merge_votes(votes: impl IntoIterator<Item = ShardVote<S>>) -> u32 {
        let mut it = votes.into_iter();
        let mut best = it.next().expect("at least one shard");
        for vote in it {
            if vote.key < best.key {
                best = vote;
            }
        }
        best.index as u32
    }

    /// Nearest-centroid label for a single sample (serial over shards).
    pub fn assign_one(&self, sample: &[S]) -> u32 {
        assert_eq!(sample.len(), self.dim(), "dimension mismatch");
        Self::merge_votes(self.shards.iter().map(|s| self.shard_vote(sample, s)))
    }

    /// Labels for a whole batch, fanning the shard scans out over the
    /// rayon pool: each shard scans every row independently, then the
    /// per-row votes merge in shard order. Work per shard is
    /// `rows × shard_k × d`, the same total as a serial scan.
    pub fn assign_batch(&self, batch: &Matrix<S>) -> Vec<u32> {
        assert_eq!(batch.cols(), self.dim(), "dimension mismatch");
        if batch.rows() == 0 {
            return Vec::new();
        }
        let per_shard: Vec<Vec<ShardVote<S>>> = self
            .shards
            .par_iter()
            .map(|shard| {
                batch
                    .iter_rows()
                    .map(|row| self.shard_vote(row, shard))
                    .collect()
            })
            .collect();
        (0..batch.rows())
            .map(|i| Self::merge_votes(per_shard.iter().map(|votes| votes[i])))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmeans_core::argmin_centroid;

    fn grid_centroids(k: usize, d: usize) -> Matrix<f64> {
        let data = (0..k * d).map(|i| (i % 17) as f64 * 0.25 - 2.0).collect();
        Matrix::from_vec(k, d, data)
    }

    #[test]
    fn sharded_matches_serial_scan_exactly() {
        let centroids = grid_centroids(23, 7);
        let samples = grid_centroids(50, 7);
        for shards in [1, 2, 3, 8, 23, 64] {
            let index = ShardedIndex::new(centroids.clone(), shards);
            let labels = index.assign_batch(&samples);
            for (i, row) in samples.iter_rows().enumerate() {
                let (serial, _) = argmin_centroid(row, &centroids);
                assert_eq!(labels[i], serial as u32, "shards={shards} row={i}");
            }
        }
    }

    #[test]
    fn ties_break_to_lowest_index_across_shard_boundaries() {
        // Duplicate centroids in different shards: the lower global index
        // must win, exactly as in a serial scan.
        let centroids = Matrix::from_rows(&[&[5.0f64, 5.0], &[1.0, 1.0], &[1.0, 1.0], &[9.0, 9.0]]);
        for shards in [1, 2, 4] {
            let index = ShardedIndex::new(centroids.clone(), shards);
            assert_eq!(index.assign_one(&[1.0, 1.0]), 1, "shards={shards}");
        }
    }

    #[test]
    fn norm_trick_agrees_on_well_separated_data() {
        let centroids = Matrix::from_rows(&[&[0.0f64, 0.0], &[10.0, 0.0], &[0.0, 10.0]]);
        let exact = ShardedIndex::new(centroids.clone(), 2);
        let trick = ShardedIndex::new(centroids, 2).with_kernel(Kernel::NormTrick);
        for sample in [[1.0, 1.0], [9.0, 1.0], [1.0, 9.0], [-3.0, -3.0]] {
            assert_eq!(exact.assign_one(&sample), trick.assign_one(&sample));
        }
    }

    #[test]
    fn over_sharding_clamps_to_k() {
        let index = ShardedIndex::new(grid_centroids(3, 2), 100);
        assert_eq!(index.num_shards(), 3);
        assert_eq!(index.k(), 3);
    }

    #[test]
    fn single_centroid_always_wins() {
        let index = ShardedIndex::new(Matrix::from_rows(&[&[1.0f64, 2.0]]), 4);
        assert_eq!(index.assign_one(&[100.0, -50.0]), 0);
        assert_eq!(index.num_shards(), 1);
    }

    #[test]
    fn empty_batch_is_fine() {
        let index = ShardedIndex::new(grid_centroids(4, 3), 2);
        assert!(index.assign_batch(&Matrix::<f64>::zeros(0, 3)).is_empty());
    }
}
