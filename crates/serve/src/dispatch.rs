//! The event-driven serve core: one dispatcher thread multiplexes every
//! event source the pipeline has — client ingress, per-shard completions,
//! model-swap / shard-kill notifications and the periodic policy tick —
//! through a single [`crossbeam_channel::Select`] loop:
//!
//! ```text
//!             ┌────────────── Select ──────────────┐
//! ingress ───▶│                                    │──▶ shard 0 queue ─▶ worker 0 ─┐
//! completions▶│  dispatcher: batch, route, scale,  │──▶ shard 1 queue ─▶ worker 1  │ steal
//! control ───▶│  admission-control, drain-on-close │──▶   …(elastic)…  ─▶ …      ◀─┘
//! ticker ────▶│                                    │◀────── Completion ────────────┘
//!             └────────────────────────────────────┘
//! ```
//!
//! * **Micro-batching** happens in the dispatcher: the first job of a batch
//!   arrives through select, the rest are drained/lingered exactly like the
//!   old per-worker batching, then the batch is routed to the least-loaded
//!   *active* shard queue.
//! * **Elastic shards**: worker channels are provisioned for `max_shards`
//!   up front but threads spawn lazily. Saturation (every active queue
//!   full) activates a shard immediately; the tick-driven
//!   [`ElasticScaler`] handles the slow path up and the lazy path down.
//!   Deactivation only stops routing — the worker parks on its empty
//!   queue, costing nothing, and is joined at shutdown.
//! * **Work stealing**: every worker holds clones of its peers' receivers
//!   (the vendored channel is MPMC); before parking it sweeps them, so a
//!   skewed burst parked behind one shard is drained by idle peers
//!   (`serve_steal_total`).
//! * **Admission control**: workers fold completed-request latencies into
//!   a shared window histogram; each tick the dispatcher swaps the window
//!   out, feeds it to the [`AdmissionController`], and publishes the
//!   shed/admit decision through the lock-free [`AdmissionGate`] that
//!   clients consult before enqueueing ([`ServeError::SloShed`]).
//! * **Drain on close**: shutdown disconnects ingress + control; the
//!   dispatcher keeps serving until every client handle is gone, flushes
//!   parked batches, then closes the shard queues so workers drain and
//!   exit. The server audits every channel afterwards and reports
//!   leftovers in the `serve_stranded_requests` gauge (always 0 unless the
//!   drain contract is broken — the load-ramp harness asserts it).

use crate::admission::{AdmissionConfig, AdmissionController, ElasticConfig, ElasticScaler, ScaleDecision};
use crate::error::ServeError;
use crate::metrics::{ServeMetrics, StageHists};
use crate::pipeline::{Job, ModelSlot, PipelineConfig, Prediction, ServeTracing};
use crossbeam_channel::{bounded, tick, unbounded, Receiver, RecvTimeoutError, Select, Sender, TryRecvError, TrySendError};
use kmeans_core::{Matrix, Scalar};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use sw_des::stats::Histogram;

/// Tuning knobs for the event-driven serve core. The legacy
/// [`PipelineConfig`] converts into a fixed-pool, no-SLO `DispatchConfig`,
/// so every pre-existing entry point runs on this core unchanged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DispatchConfig {
    /// Bounded admission-queue capacity; the backpressure limit.
    pub queue_capacity: usize,
    /// Largest micro-batch the dispatcher will form.
    pub max_batch: usize,
    /// How long the dispatcher waits for stragglers after the first
    /// request of a batch. Zero disables lingering.
    pub linger: Duration,
    /// Elastic shard policy (min/max active workers and scaling knobs).
    pub shards: ElasticConfig,
    /// Per-shard batch-queue capacity (batches, not requests).
    pub shard_queue: usize,
    /// Policy-tick period: admission windows, QPS gauge, scale decisions.
    pub tick: Duration,
    /// SLO-aware admission control; `None` keeps the legacy behaviour of
    /// shedding purely by queue occupancy.
    pub admission: Option<AdmissionConfig>,
}

impl Default for DispatchConfig {
    fn default() -> Self {
        DispatchConfig {
            queue_capacity: 1024,
            max_batch: 64,
            linger: Duration::from_micros(200),
            shards: ElasticConfig::fixed(2),
            shard_queue: 4,
            tick: Duration::from_millis(2),
            admission: None,
        }
    }
}

impl From<PipelineConfig> for DispatchConfig {
    fn from(c: PipelineConfig) -> Self {
        DispatchConfig {
            queue_capacity: c.queue_capacity,
            max_batch: c.max_batch,
            linger: c.linger,
            shards: ElasticConfig::fixed(c.workers),
            ..DispatchConfig::default()
        }
    }
}

/// Out-of-band notifications the server hands the select loop.
pub(crate) enum Control {
    /// A model generation was installed ([`crate::pipeline::Server::swap_model`]).
    SwapObserved { generation: u64 },
    /// A shard-liveness kill was injected.
    ShardKilled { shard: usize },
}

/// One executed batch, reported by the executing worker. `shard` is the
/// queue the batch was *routed* to (not necessarily the executor — a steal
/// still completes the victim's queue slot).
struct Completion {
    shard: usize,
    requests: u64,
}

/// A routed micro-batch.
pub(crate) struct ShardBatch<S> {
    jobs: Vec<Job<S>>,
    shard: usize,
}

/// Lock-free admission decision shared between the dispatcher (writer) and
/// every client (readers). `slo_p99_ns == 0` disables SLO admission.
pub(crate) struct AdmissionGate {
    slo_p99_ns: u64,
    shedding: AtomicBool,
    predicted_p99_ns: AtomicU64,
}

impl AdmissionGate {
    fn new(admission: Option<AdmissionConfig>) -> Self {
        AdmissionGate {
            slo_p99_ns: admission.map_or(0, |a| a.slo_p99_ns),
            shedding: AtomicBool::new(false),
            predicted_p99_ns: AtomicU64::new(0),
        }
    }

    fn publish(&self, shedding: bool, predicted_p99_ns: f64) {
        self.predicted_p99_ns
            .store(predicted_p99_ns as u64, Ordering::Relaxed);
        self.shedding.store(shedding, Ordering::Relaxed);
    }

    /// The client-side check: `Err(SloShed)` while the controller sheds.
    pub(crate) fn check(&self) -> Result<(), ServeError> {
        if self.slo_p99_ns != 0 && self.shedding.load(Ordering::Relaxed) {
            Err(ServeError::SloShed {
                predicted_p99_us: self.predicted_p99_ns.load(Ordering::Relaxed) / 1_000,
                slo_p99_us: self.slo_p99_ns / 1_000,
            })
        } else {
            Ok(())
        }
    }
}

/// Handles the server keeps to a running dispatch core.
pub(crate) struct DispatchCore<S> {
    pub(crate) ingress: Sender<Job<S>>,
    pub(crate) control: Sender<Control>,
    pub(crate) gate: Arc<AdmissionGate>,
    pub(crate) dispatcher: JoinHandle<()>,
    /// Worker threads, pushed by the dispatcher as shards activate. Joined
    /// by the server after the dispatcher (no more spawns can happen).
    pub(crate) worker_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
    /// Receiver clones of every queue in the select loop, kept solely for
    /// the drain-on-close audit.
    pub(crate) audit_ingress: Receiver<Job<S>>,
    pub(crate) audit_shards: Vec<Receiver<ShardBatch<S>>>,
}

impl<S> DispatchCore<S> {
    /// Disconnect the select loop's inbound channels, wait for the drain,
    /// join everything, then run the drain-on-close audit: count (and
    /// release) any request still parked in a queue after the dispatcher
    /// and workers have exited. Always 0 under the drain contract;
    /// dropping a stranded job disconnects its reply channel, so a waiting
    /// client still gets `ShuttingDown` rather than a hang. Returns the
    /// stranded-request count.
    pub(crate) fn shutdown(self) -> u64 {
        let DispatchCore {
            ingress,
            control,
            gate: _,
            dispatcher,
            worker_handles,
            audit_ingress,
            audit_shards,
        } = self;
        drop(control);
        drop(ingress);
        dispatcher.join().expect("serve dispatcher panicked");
        // The dispatcher has exited, so no further spawns: this joins
        // every worker that ever existed.
        for handle in worker_handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
        {
            handle.join().expect("serve worker panicked");
        }
        let mut stranded = 0u64;
        while audit_ingress.try_recv().is_ok() {
            stranded += 1;
        }
        for rx in &audit_shards {
            while let Ok(batch) = rx.try_recv() {
                stranded += batch.jobs.len() as u64;
            }
        }
        stranded
    }
}

/// Spawn the dispatcher (and its lazily-activated workers).
pub(crate) fn start<S: Scalar>(
    slot: Arc<ModelSlot<S>>,
    metrics: Arc<ServeMetrics>,
    config: DispatchConfig,
    tracing: ServeTracing,
) -> DispatchCore<S> {
    assert!(config.queue_capacity > 0, "queue capacity must be positive");
    assert!(config.max_batch > 0, "max batch must be positive");
    assert!(config.shard_queue > 0, "shard queue must be positive");
    assert!(!config.tick.is_zero(), "tick period must be non-zero");
    let max_shards = config.shards.max_shards;
    let (ingress_tx, ingress_rx) = bounded::<Job<S>>(config.queue_capacity);
    let (ctl_tx, ctl_rx) = unbounded::<Control>();
    let (done_tx, done_rx) = unbounded::<Completion>();
    let (shard_txs, shard_rxs): (Vec<_>, Vec<_>) = (0..max_shards)
        .map(|_| bounded::<ShardBatch<S>>(config.shard_queue))
        .unzip();
    let gate = Arc::new(AdmissionGate::new(config.admission));
    let window = Arc::new(Mutex::new(Histogram::new()));
    let worker_handles = Arc::new(Mutex::new(Vec::new()));
    let audit_ingress = ingress_rx.clone();
    let audit_shards: Vec<_> = shard_rxs.iter().cloned().collect();
    let dispatcher = {
        let spawner = ShardSpawner {
            slot: Arc::clone(&slot),
            metrics: Arc::clone(&metrics),
            tracing: tracing.clone(),
            window: Arc::clone(&window),
            done_tx,
            rxs: shard_rxs,
            handles: Arc::clone(&worker_handles),
            spawned: vec![false; max_shards],
        };
        let state = Dispatcher {
            // The dispatcher's own spans land one track above the last
            // possible worker track.
            tracer: tracing
                .buffer
                .as_ref()
                .map(|buf| swkm_obs::Tracer::new(Arc::clone(buf), "serve", max_shards as u32)),
            config,
            slot,
            metrics,
            gate: Arc::clone(&gate),
            window,
            shard_txs,
            spawner,
            controller: config.admission.map(AdmissionController::new),
            scaler: ElasticScaler::new(config.shards),
            active: 0,
            inflight: vec![0; max_shards],
            pending: VecDeque::new(),
            completed_window: 0,
        };
        std::thread::Builder::new()
            .name("serve-dispatch".into())
            .spawn(move || dispatcher_loop(state, ingress_rx, done_rx, ctl_rx))
            .expect("spawn serve dispatcher")
    };
    DispatchCore {
        ingress: ingress_tx,
        control: ctl_tx,
        gate,
        dispatcher,
        worker_handles,
        audit_ingress,
        audit_shards,
    }
}

/// Everything the dispatcher owns besides the receivers it selects over
/// (those stay outside so `Select` can borrow them while these mutate).
struct Dispatcher<S: Scalar> {
    config: DispatchConfig,
    slot: Arc<ModelSlot<S>>,
    metrics: Arc<ServeMetrics>,
    gate: Arc<AdmissionGate>,
    window: Arc<Mutex<Histogram>>,
    shard_txs: Vec<Sender<ShardBatch<S>>>,
    spawner: ShardSpawner<S>,
    tracer: Option<swkm_obs::Tracer>,
    controller: Option<AdmissionController>,
    scaler: ElasticScaler,
    active: usize,
    /// Batches routed to each shard queue and not yet completed.
    inflight: Vec<u64>,
    /// Batches that could not be routed because every active queue was
    /// full at `max_shards`. Routing is gated on this being empty, so it
    /// holds at most one batch — backpressure stays structural (the
    /// ingress queue fills and clients shed).
    pending: VecDeque<ShardBatch<S>>,
    /// Requests completed since the last tick (drives `serve_qps_window`).
    completed_window: u64,
}

impl<S: Scalar> Dispatcher<S> {
    fn activate(&mut self) {
        if self.active >= self.config.shards.max_shards {
            return;
        }
        self.spawner.spawn(self.active);
        self.active += 1;
        self.scaler.note_pressure();
        self.metrics.record_scale_up(self.active as u64);
        if let Some(t) = &self.tracer {
            t.instant_full("scale_up", 0, "active", self.active as u64);
        }
    }

    fn deactivate(&mut self) {
        if self.active <= self.config.shards.min_shards {
            return;
        }
        self.active -= 1;
        self.metrics.record_scale_down(self.active as u64);
        if let Some(t) = &self.tracer {
            t.instant_full("scale_down", 0, "active", self.active as u64);
        }
    }

    /// Route to the least-loaded active shard. Returns the batch when
    /// every active queue is full.
    fn try_dispatch(&mut self, mut batch: ShardBatch<S>) -> Option<ShardBatch<S>> {
        let mut order: Vec<usize> = (0..self.active).collect();
        order.sort_by_key(|&i| self.shard_txs[i].len() as u64 + self.inflight[i]);
        for i in order {
            batch.shard = i;
            match self.shard_txs[i].try_send(batch) {
                Ok(()) => {
                    self.inflight[i] += 1;
                    return None;
                }
                Err(TrySendError::Full(b)) => batch = b,
                // A worker's receivers only close at shutdown; treat a
                // torn-down queue like a full one and try the next shard.
                Err(TrySendError::Disconnected(b)) => batch = b,
            }
        }
        Some(batch)
    }

    fn route(&mut self, batch: ShardBatch<S>) {
        let mut batch = batch;
        loop {
            match self.try_dispatch(batch) {
                None => return,
                Some(b) => {
                    if self.active < self.config.shards.max_shards {
                        // Saturation is the eager scale-up signal:
                        // activate a shard and retry (its queue is empty,
                        // so the retry cannot fail).
                        self.activate();
                        batch = b;
                    } else {
                        self.pending.push_back(b);
                        return;
                    }
                }
            }
        }
    }

    fn flush_pending(&mut self) {
        while let Some(b) = self.pending.pop_front() {
            if let Some(b) = self.try_dispatch(b) {
                self.pending.push_front(b);
                break;
            }
        }
    }

    fn complete(&mut self, c: Completion) {
        if let Some(n) = self.inflight.get_mut(c.shard) {
            *n = n.saturating_sub(1);
        }
        self.completed_window += c.requests;
    }

    /// Batches routed or queued anywhere downstream of the dispatcher.
    fn busy_batches(&self) -> usize {
        let queued: usize = self.shard_txs.iter().map(Sender::len).sum();
        let inflight: u64 = self.inflight.iter().sum();
        queued + inflight as usize + self.pending.len()
    }

    fn on_tick(&mut self, ingress_depth: usize) {
        if let Some(controller) = self.controller.as_mut() {
            let w = {
                let mut guard = self.window.lock().unwrap_or_else(|e| e.into_inner());
                std::mem::take(&mut *guard)
            };
            let shedding = controller.observe_window(&w);
            self.gate.publish(shedding, controller.predicted_p99_ns());
            self.metrics
                .record_admission_state(controller.predicted_p99_ns(), shedding);
        }
        let qps = self.completed_window as f64 / self.config.tick.as_secs_f64().max(1e-9);
        self.completed_window = 0;
        self.metrics.record_window_qps(qps);
        match self.scaler.tick(
            self.active,
            ingress_depth,
            self.config.queue_capacity,
            self.busy_batches(),
        ) {
            ScaleDecision::Up => self.activate(),
            ScaleDecision::Down => self.deactivate(),
            ScaleDecision::Hold => {}
        }
    }

    /// Answer a batch that cannot reach any worker with a typed error
    /// instead of dropping it (conservation: these count as `failed`).
    fn fail_batch(&self, batch: ShardBatch<S>) {
        self.metrics.record_failed(batch.jobs.len() as u64);
        for job in &batch.jobs {
            let _ = job.reply.send(Err(ServeError::ShuttingDown));
        }
    }
}

/// First job in hand, drain whatever is queued, then linger for
/// stragglers — the same adaptive micro-batching the workers used to do,
/// now centralised in the dispatcher.
fn form_batch<S>(first: Job<S>, ingress: &Receiver<Job<S>>, config: &DispatchConfig) -> Vec<Job<S>> {
    let mut jobs = vec![first];
    while jobs.len() < config.max_batch {
        match ingress.try_recv() {
            Ok(job) => jobs.push(job),
            Err(_) => break,
        }
    }
    if !config.linger.is_zero() {
        let deadline = Instant::now() + config.linger;
        while jobs.len() < config.max_batch {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match ingress.recv_timeout(deadline - now) {
                Ok(job) => jobs.push(job),
                Err(_) => break,
            }
        }
    }
    jobs
}

fn dispatcher_loop<S: Scalar>(
    mut d: Dispatcher<S>,
    ingress: Receiver<Job<S>>,
    done: Receiver<Completion>,
    ctl: Receiver<Control>,
) {
    // Spawn the baseline pool directly — it is not a scale-up event.
    for shard in 0..d.config.shards.min_shards {
        d.spawner.spawn(shard);
    }
    d.active = d.config.shards.min_shards;
    d.metrics.record_shards_active(d.active as u64);
    let ticker = tick(d.config.tick);
    let mut sel = Select::new();
    let op_ingress = sel.recv(&ingress);
    let op_done = sel.recv(&done);
    let op_ctl = sel.recv(&ctl);
    let op_tick = sel.recv(&ticker);
    loop {
        if !d.pending.is_empty() {
            // Backpressured: every active queue is full at max_shards. The
            // only event that can unblock routing is a completion; park on
            // it (bounded by the tick so policy work still happens) and do
            // NOT pull new ingress work — the admission queue must fill so
            // clients shed.
            match done.recv_timeout(d.config.tick) {
                Ok(c) => {
                    d.complete(c);
                    d.flush_pending();
                }
                Err(RecvTimeoutError::Timeout) => {
                    let _ = ticker.try_recv();
                    d.on_tick(ingress.len());
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // No worker can ever answer again: fail what's parked.
                    while let Some(b) = d.pending.pop_front() {
                        d.fail_batch(b);
                    }
                }
            }
            continue;
        }
        let op = sel.ready();
        if op == op_ingress {
            match ingress.try_recv() {
                Ok(first) => {
                    let dispatch_start = d.tracer.as_ref().map_or(0, swkm_obs::Tracer::begin);
                    let jobs = form_batch(first, &ingress, &d.config);
                    let trace_id = jobs.iter().map(|j| j.trace_id).find(|&id| id != 0);
                    let len = jobs.len() as u64;
                    d.route(ShardBatch { jobs, shard: 0 });
                    if let (Some(t), Some(id)) = (&d.tracer, trace_id) {
                        t.complete_full("dispatch", dispatch_start, id, "batch", len);
                    }
                }
                Err(TryRecvError::Empty) => {}
                Err(TryRecvError::Disconnected) => break,
            }
        } else if op == op_done {
            match done.try_recv() {
                Ok(c) => {
                    d.complete(c);
                    d.flush_pending();
                }
                Err(_) => {}
            }
        } else if op == op_ctl {
            match ctl.try_recv() {
                Ok(Control::SwapObserved { generation }) => {
                    if let Some(t) = &d.tracer {
                        t.instant_full("model_swap_observed", 0, "generation", generation);
                    }
                }
                Ok(Control::ShardKilled { shard }) => {
                    d.metrics.record_alive_index_shards(d.slot.current().alive_shards() as u64);
                    if let Some(t) = &d.tracer {
                        t.instant_full("shard_kill_observed", 0, "shard", shard as u64);
                    }
                }
                Err(TryRecvError::Empty) => {}
                // The control sender lives in the server handle; its
                // disconnect means shutdown has begun.
                Err(TryRecvError::Disconnected) => break,
            }
        } else if op == op_tick {
            let _ = ticker.try_recv();
            d.on_tick(ingress.len());
        }
    }
    drain(&mut d, &ingress, &done);
    // Closing the shard queues releases the workers: each drains its own
    // queue (and any steals), then exits on the disconnect.
    drop(d.shard_txs);
}

/// Shutdown drain: keep serving stragglers until every client handle is
/// gone (the ingress disconnects), then flush anything parked.
fn drain<S: Scalar>(d: &mut Dispatcher<S>, ingress: &Receiver<Job<S>>, done: &Receiver<Completion>) {
    loop {
        while let Ok(c) = done.try_recv() {
            d.complete(c);
        }
        d.flush_pending();
        if d.pending.is_empty() {
            match ingress.recv_timeout(Duration::from_millis(1)) {
                Ok(first) => {
                    let jobs = form_batch(first, ingress, &d.config);
                    d.route(ShardBatch { jobs, shard: 0 });
                }
                Err(RecvTimeoutError::Disconnected) => break,
                Err(RecvTimeoutError::Timeout) => {}
            }
        } else {
            match done.recv_timeout(Duration::from_millis(10)) {
                Ok(c) => d.complete(c),
                Err(RecvTimeoutError::Timeout) => {
                    // A wedged pool at max_shards just waits; below max we
                    // can add capacity to keep the drain moving.
                    d.activate();
                }
                Err(RecvTimeoutError::Disconnected) => {
                    while let Some(b) = d.pending.pop_front() {
                        d.fail_batch(b);
                    }
                }
            }
        }
    }
    // Ingress fully drained; flush the last parked batches.
    while !d.pending.is_empty() {
        d.flush_pending();
        if d.pending.is_empty() {
            break;
        }
        match done.recv_timeout(Duration::from_millis(50)) {
            Ok(c) => d.complete(c),
            Err(RecvTimeoutError::Timeout) => d.activate(),
            Err(RecvTimeoutError::Disconnected) => {
                while let Some(b) = d.pending.pop_front() {
                    d.fail_batch(b);
                }
            }
        }
    }
}

/// Lazily spawns one worker thread per activated shard.
struct ShardSpawner<S: Scalar> {
    slot: Arc<ModelSlot<S>>,
    metrics: Arc<ServeMetrics>,
    tracing: ServeTracing,
    window: Arc<Mutex<Histogram>>,
    done_tx: Sender<Completion>,
    rxs: Vec<Receiver<ShardBatch<S>>>,
    handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
    spawned: Vec<bool>,
}

impl<S: Scalar> ShardSpawner<S> {
    fn spawn(&mut self, shard: usize) {
        if self.spawned[shard] {
            return; // re-activation after a scale-down: thread still parked
        }
        self.spawned[shard] = true;
        let own = self.rxs[shard].clone();
        let steals: Vec<(usize, Receiver<ShardBatch<S>>)> = self
            .rxs
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != shard)
            .map(|(i, rx)| (i, rx.clone()))
            .collect();
        let slot = Arc::clone(&self.slot);
        let metrics = Arc::clone(&self.metrics);
        let tracing = self.tracing.clone();
        let window = Arc::clone(&self.window);
        let done = self.done_tx.clone();
        let handle = std::thread::Builder::new()
            .name(format!("serve-shard-{shard}"))
            .spawn(move || worker_loop(shard, own, steals, slot, metrics, tracing, window, done))
            .expect("spawn serve worker");
        self.handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(handle);
    }
}

/// How long an idle worker parks before re-sweeping its peers' queues for
/// stealable batches.
const STEAL_SWEEP: Duration = Duration::from_micros(500);

#[allow(clippy::too_many_arguments)]
fn worker_loop<S: Scalar>(
    shard: usize,
    own: Receiver<ShardBatch<S>>,
    steals: Vec<(usize, Receiver<ShardBatch<S>>)>,
    slot: Arc<ModelSlot<S>>,
    metrics: Arc<ServeMetrics>,
    tracing: ServeTracing,
    window: Arc<Mutex<Histogram>>,
    done: Sender<Completion>,
) {
    // One tracer per worker: this shard's spans land on track `shard`.
    let tracer = tracing
        .buffer
        .as_ref()
        .map(|buf| swkm_obs::Tracer::new(Arc::clone(buf), "serve", shard as u32));
    // Stagger the steal sweep start per worker so idle workers don't all
    // hammer the same victim.
    let mut rotation = shard;
    'serve: loop {
        match own.try_recv() {
            Ok(batch) => {
                execute_batch(batch, &slot, &metrics, &tracing, tracer.as_ref(), &window, &done);
                continue 'serve;
            }
            Err(TryRecvError::Disconnected) => break,
            Err(TryRecvError::Empty) => {}
        }
        if !steals.is_empty() {
            rotation = rotation.wrapping_add(1);
            for off in 0..steals.len() {
                let (victim, rx) = &steals[(rotation + off) % steals.len()];
                // Errors here are fine: an empty or shutting-down victim
                // queue simply isn't stealable.
                if let Ok(batch) = rx.try_recv() {
                    metrics.record_steal();
                    if let Some(t) = &tracer {
                        t.instant_full("steal", 0, "victim", *victim as u64);
                    }
                    execute_batch(batch, &slot, &metrics, &tracing, tracer.as_ref(), &window, &done);
                    continue 'serve;
                }
            }
        }
        // Nothing anywhere: park briefly on the own queue, then re-sweep.
        // Disconnect is the clean exit — scale-down never closes the
        // channel, only shutdown does, and only after the drain.
        match own.recv_timeout(STEAL_SWEEP) {
            Ok(batch) => {
                execute_batch(batch, &slot, &metrics, &tracing, tracer.as_ref(), &window, &done)
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}

/// Execute one micro-batch: pin the model generation, scan, reply, record.
/// This is the old per-worker pipeline body, unchanged in observable
/// behaviour (same spans, same failover/flight triggers, same counters).
fn execute_batch<S: Scalar>(
    batch: ShardBatch<S>,
    slot: &ModelSlot<S>,
    metrics: &ServeMetrics,
    tracing: &ServeTracing,
    tracer: Option<&swkm_obs::Tracer>,
    window: &Mutex<Histogram>,
    done: &Sender<Completion>,
) {
    let ShardBatch { jobs: batch, shard } = batch;
    // Pin one generation for the whole batch: a concurrent swap_model
    // must never hand half a batch to a different centroid set.
    let index = slot.current();
    let d = index.dim();
    let started = Instant::now();
    let started_ns = tracer.map_or(0, swkm_obs::Tracer::begin);
    let mut local = StageHists::default();
    local.batch_size.record(batch.len() as u64);
    for job in &batch {
        local
            .queue_wait_ns
            .record(started.duration_since(job.enqueued).as_nanos() as u64);
    }
    if let Some(t) = tracer {
        // Each sampled request's wait from admission to execution start,
        // on the executing worker's track.
        for job in batch.iter().filter(|j| j.trace_id != 0) {
            t.complete_at(
                "queue_wait",
                job.enqueued_ns,
                started_ns.saturating_sub(job.enqueued_ns),
                job.trace_id,
                "batch",
                batch.len() as u64,
            );
        }
    }
    let mut data = Vec::with_capacity(batch.len() * d);
    for job in &batch {
        data.extend_from_slice(&job.sample);
    }
    let samples = Matrix::from_vec(batch.len(), d, data);
    let exec_start = Instant::now();
    let exec_start_ns = tracer.map_or(0, swkm_obs::Tracer::begin);
    // Per-shard assign spans carry the batch's first sampled id, so a
    // traced request's pipeline shows its shard fan-out.
    let shard_trace_id = batch.iter().map(|j| j.trace_id).find(|&id| id != 0);
    let outcome = index.try_assign_batch_traced(
        &samples,
        match (tracer, shard_trace_id) {
            (Some(t), Some(id)) => Some((t, id)),
            _ => None,
        },
    );
    local
        .execute_ns
        .record(exec_start.elapsed().as_nanos() as u64);
    if let (Some(t), Some(id)) = (tracer, shard_trace_id) {
        t.complete_full("execute", exec_start_ns, id, "batch", batch.len() as u64);
    }
    let finished = Instant::now();
    let finished_ns = tracer.map_or(0, swkm_obs::Tracer::begin);
    match outcome {
        Ok(outcome) => {
            let degraded = outcome.skipped_shards > 0;
            if degraded {
                // One failover event per dead shard the batch was routed
                // around.
                metrics.record_failovers(outcome.skipped_shards as u64);
                if let Some(t) = tracer {
                    t.instant_full(
                        "shard_failover",
                        shard_trace_id.unwrap_or(0),
                        "skipped",
                        outcome.skipped_shards as u64,
                    );
                }
                if let Some(flight) = &tracing.flight {
                    flight.trigger("shard_failover");
                }
            }
            for (job, &label) in batch.iter().zip(&outcome.labels) {
                let total_ns = finished.duration_since(job.enqueued).as_nanos() as u64;
                local.total_ns.record(total_ns);
                if job.trace_id != 0 {
                    if let Some(t) = tracer {
                        t.complete_at(
                            "request",
                            job.enqueued_ns,
                            finished_ns.saturating_sub(job.enqueued_ns),
                            job.trace_id,
                            "label",
                            label as u64,
                        );
                    }
                    metrics.record_exemplar(total_ns, job.trace_id);
                }
                // A client that gave up is not an error; drop its reply.
                let _ = job.reply.send(Ok(Prediction {
                    label,
                    degraded,
                    trace_id: job.trace_id,
                }));
            }
            metrics.record_completed(batch.len() as u64);
        }
        Err(e) => {
            // Nothing survived to answer — fail every request in the
            // batch with the typed error instead of dropping it.
            metrics.record_failed(batch.len() as u64);
            if let Some(t) = tracer {
                t.instant_full(
                    "batch_failed",
                    shard_trace_id.unwrap_or(0),
                    "requests",
                    batch.len() as u64,
                );
            }
            if matches!(e, ServeError::AllShardsDown { .. }) {
                if let Some(flight) = &tracing.flight {
                    flight.trigger("all_shards_down");
                }
            }
            for job in &batch {
                let _ = job.reply.send(Err(e.clone()));
            }
        }
    }
    // Completed-request latencies feed the admission controller's window.
    if local.total_ns.count() > 0 {
        window
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .merge(&local.total_ns);
    }
    metrics.merge_hists(&local);
    // The dispatcher exiting first (its receiver gone) is a clean
    // shutdown race, not an error — the reply above already went out.
    let _ = done.send(Completion {
        shard,
        requests: batch.len() as u64,
    });
}
