//! The multi-threaded request pipeline:
//!
//! ```text
//! Client::predict ──try_send──▶ [bounded admission queue] ──▶ worker threads
//!        │                            │ full?                    │ micro-batch,
//!        │                            ▼                          │ shard fan-out
//!        │                     Err(Overloaded)                   ▼
//!        ◀──────────────── reply channel ◀──────────────── per-request reply
//! ```
//!
//! Backpressure is structural: admission is a `try_send` into a bounded
//! crossbeam channel, so a saturated server sheds load with a typed
//! [`ServeError::Overloaded`] instead of queueing unboundedly. Workers form
//! *adaptive micro-batches* — drain whatever is already queued, then linger
//! briefly for stragglers — so batch size grows with load (amortising the
//! shard fan-out) and shrinks to 1 when idle (minimising latency).
//! Shutdown is graceful: dropping the last sender lets workers drain every
//! admitted request before exiting.

use crate::error::ServeError;
use crate::index::ShardedIndex;
use crate::metrics::{ServeMetrics, Snapshot, StageHists};
use crossbeam_channel::{bounded, Receiver, Sender, TrySendError};
use kmeans_core::{Matrix, Scalar};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for the request pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Bounded admission-queue capacity; the backpressure limit.
    pub queue_capacity: usize,
    /// Worker threads forming and executing micro-batches.
    pub workers: usize,
    /// Largest micro-batch a worker will form.
    pub max_batch: usize,
    /// How long a worker waits for stragglers after the first request of a
    /// batch arrives. Zero disables lingering (pure drain batching).
    pub linger: Duration,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            queue_capacity: 1024,
            workers: 2,
            max_batch: 64,
            linger: Duration::from_micros(200),
        }
    }
}

/// A served prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Nearest-centroid label.
    pub label: u32,
    /// True when dead shards were skipped while answering: the label is
    /// the argmin over the *surviving* centroids only (partial
    /// degradation), not a full-index answer.
    pub degraded: bool,
}

struct Job<S> {
    sample: Vec<S>,
    enqueued: Instant,
    reply: Sender<Result<Prediction, ServeError>>,
}

/// A running prediction server. Dropping every [`Client`] and calling
/// [`Server::shutdown`] drains the queue and joins the workers.
pub struct Server<S: Scalar> {
    sender: Option<Sender<Job<S>>>,
    workers: Vec<JoinHandle<()>>,
    metrics: Arc<ServeMetrics>,
    index: Arc<ShardedIndex<S>>,
    config: PipelineConfig,
}

impl<S: Scalar> Server<S> {
    /// Spawn the worker pool and start serving with a private metrics
    /// registry (see [`Server::start_with_registry`] to share one).
    pub fn start(index: ShardedIndex<S>, config: PipelineConfig) -> Self {
        Self::start_with_registry(index, config, swkm_obs::MetricsRegistry::shared())
    }

    /// Spawn the worker pool recording `serve_*` metrics into an existing
    /// registry, so one process exports training and serving metrics as a
    /// single document.
    pub fn start_with_registry(
        index: ShardedIndex<S>,
        config: PipelineConfig,
        registry: Arc<swkm_obs::MetricsRegistry>,
    ) -> Self {
        assert!(config.queue_capacity > 0, "queue capacity must be positive");
        assert!(config.workers > 0, "need at least one worker");
        assert!(config.max_batch > 0, "max batch must be positive");
        let (sender, receiver) = bounded::<Job<S>>(config.queue_capacity);
        registry.gauge_set("serve_assign_kernel", index.kernel().code() as f64);
        let metrics = Arc::new(ServeMetrics::with_registry(registry));
        let index = Arc::new(index);
        let workers = (0..config.workers)
            .map(|_| {
                let receiver = receiver.clone();
                let index = Arc::clone(&index);
                let metrics = Arc::clone(&metrics);
                std::thread::spawn(move || worker_loop(receiver, index, metrics, config))
            })
            .collect();
        Server {
            sender: Some(sender),
            workers,
            metrics,
            index,
            config,
        }
    }

    /// A handle for issuing predictions; cheap to clone, safe to share
    /// across threads. All clients must be dropped before
    /// [`Server::shutdown`] can finish draining.
    pub fn client(&self) -> Client<S> {
        Client {
            sender: self.sender.clone().expect("server already shut down"),
            metrics: Arc::clone(&self.metrics),
            dim: self.index.dim(),
            capacity: self.config.queue_capacity,
        }
    }

    /// Current metrics view, including live queue depth.
    pub fn snapshot(&self) -> Snapshot {
        let depth = self.sender.as_ref().map_or(0, Sender::len);
        self.metrics.snapshot(depth)
    }

    /// The metrics registry this server records into — hand it to the
    /// `swkm_obs` exporters for JSON/Prometheus output.
    pub fn registry(&self) -> &Arc<swkm_obs::MetricsRegistry> {
        self.metrics.registry()
    }

    pub fn index(&self) -> &ShardedIndex<S> {
        &self.index
    }

    /// Simulate a shard crash while serving: subsequent batches re-dispatch
    /// to the surviving shards and replies carry
    /// [`Prediction::degraded`]`== true`. Returns whether the shard was
    /// alive. Admitted requests are never lost — with every shard down
    /// they fail with a typed [`ServeError::AllShardsDown`].
    pub fn kill_shard(&self, shard: usize) -> bool {
        self.index.kill_shard(shard)
    }

    /// Stop admitting work, drain every already-admitted request, join the
    /// workers and return the final metrics. Requires all [`Client`]
    /// handles to have been dropped (they hold the admission queue open).
    pub fn shutdown(mut self) -> Snapshot {
        drop(self.sender.take());
        for worker in self.workers.drain(..) {
            worker.join().expect("serve worker panicked");
        }
        self.metrics.snapshot(0)
    }
}

/// A request-issuing handle onto a running [`Server`].
pub struct Client<S: Scalar> {
    sender: Sender<Job<S>>,
    metrics: Arc<ServeMetrics>,
    dim: usize,
    capacity: usize,
}

impl<S: Scalar> Clone for Client<S> {
    fn clone(&self) -> Self {
        Client {
            sender: self.sender.clone(),
            metrics: Arc::clone(&self.metrics),
            dim: self.dim,
            capacity: self.capacity,
        }
    }
}

impl<S: Scalar> Client<S> {
    /// Closed-loop predict: non-blocking admission (sheds with
    /// [`ServeError::Overloaded`] when the queue is full), then blocks
    /// until the worker replies.
    pub fn predict(&self, sample: Vec<S>) -> Result<Prediction, ServeError> {
        if sample.len() != self.dim {
            return Err(ServeError::DimensionMismatch {
                expected: self.dim,
                got: sample.len(),
            });
        }
        let (reply_tx, reply_rx) = bounded(1);
        let job = Job {
            sample,
            enqueued: Instant::now(),
            reply: reply_tx,
        };
        match self.sender.try_send(job) {
            Ok(()) => self.metrics.record_accepted(),
            Err(TrySendError::Full(_)) => {
                self.metrics.record_rejected();
                return Err(ServeError::Overloaded {
                    queue_depth: self.sender.len(),
                    capacity: self.capacity,
                });
            }
            Err(TrySendError::Disconnected(_)) => return Err(ServeError::ShuttingDown),
        }
        reply_rx.recv().map_err(|_| ServeError::ShuttingDown)?
    }
}

/// Pull a micro-batch: the blocking first job, then everything already
/// queued, then linger for stragglers until `max_batch` or the deadline.
fn next_batch<S>(jobs: &Receiver<Job<S>>, config: &PipelineConfig) -> Option<Vec<Job<S>>> {
    let first = jobs.recv().ok()?;
    let deadline = Instant::now() + config.linger;
    let mut batch = vec![first];
    while batch.len() < config.max_batch {
        match jobs.try_recv() {
            Ok(job) => batch.push(job),
            Err(_) => {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                match jobs.recv_timeout(deadline - now) {
                    Ok(job) => batch.push(job),
                    Err(_) => break,
                }
            }
        }
    }
    Some(batch)
}

fn worker_loop<S: Scalar>(
    jobs: Receiver<Job<S>>,
    index: Arc<ShardedIndex<S>>,
    metrics: Arc<ServeMetrics>,
    config: PipelineConfig,
) {
    let d = index.dim();
    while let Some(batch) = next_batch(&jobs, &config) {
        let formed = Instant::now();
        let mut local = StageHists::default();
        local.batch_size.record(batch.len() as u64);
        for job in &batch {
            local
                .queue_wait_ns
                .record(formed.duration_since(job.enqueued).as_nanos() as u64);
        }
        let mut data = Vec::with_capacity(batch.len() * d);
        for job in &batch {
            data.extend_from_slice(&job.sample);
        }
        let samples = Matrix::from_vec(batch.len(), d, data);
        let exec_start = Instant::now();
        let outcome = index.try_assign_batch(&samples);
        local
            .execute_ns
            .record(exec_start.elapsed().as_nanos() as u64);
        let done = Instant::now();
        match outcome {
            Ok(outcome) => {
                let degraded = outcome.skipped_shards > 0;
                if degraded {
                    // One failover event per dead shard the batch was
                    // routed around.
                    metrics.record_failovers(outcome.skipped_shards as u64);
                }
                for (job, &label) in batch.iter().zip(&outcome.labels) {
                    local
                        .total_ns
                        .record(done.duration_since(job.enqueued).as_nanos() as u64);
                    // A client that gave up is not an error; drop its reply.
                    let _ = job.reply.send(Ok(Prediction { label, degraded }));
                }
                metrics.record_completed(batch.len() as u64);
            }
            Err(e) => {
                // Nothing survived to answer — fail every request in the
                // batch with the typed error instead of dropping it.
                metrics.record_failed(batch.len() as u64);
                for job in &batch {
                    let _ = job.reply.send(Err(e.clone()));
                }
            }
        }
        metrics.merge_hists(&local);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_index() -> ShardedIndex<f64> {
        let centroids = Matrix::from_rows(&[
            &[0.0f64, 0.0],
            &[10.0, 10.0],
            &[-10.0, 10.0],
            &[10.0, -10.0],
        ]);
        ShardedIndex::new(centroids, 2)
    }

    #[test]
    fn predictions_flow_end_to_end() {
        let server = Server::start(small_index(), PipelineConfig::default());
        let client = server.client();
        assert_eq!(client.predict(vec![0.1, -0.2]).unwrap().label, 0);
        assert_eq!(client.predict(vec![9.0, 9.0]).unwrap().label, 1);
        drop(client);
        let snap = server.shutdown();
        assert_eq!(snap.completed, 2);
        assert_eq!(snap.accepted, 2);
    }

    #[test]
    fn killed_shard_degrades_but_keeps_serving() {
        let server = Server::start(small_index(), PipelineConfig::default());
        let client = server.client();
        let healthy = client.predict(vec![0.1, -0.2]).unwrap();
        assert!(!healthy.degraded);
        // Kill the shard owning centroids {0, 1}: queries near centroid 0
        // must fail over to the surviving shard's centroids {2, 3}.
        assert!(server.kill_shard(0));
        let degraded = client.predict(vec![0.1, -0.2]).unwrap();
        assert!(degraded.degraded);
        assert!(
            degraded.label >= 2,
            "label {} from a dead shard",
            degraded.label
        );
        drop(client);
        let snap = server.shutdown();
        assert_eq!(snap.completed, 2);
        assert!(snap.shard_failovers >= 1);
        assert_eq!(snap.failed, 0);
    }

    #[test]
    fn all_shards_down_fails_requests_with_typed_error() {
        // Regression for the unwrap()/expect() audit: with every shard
        // dead, admitted requests must be answered with AllShardsDown —
        // not panic a worker, not hang the client.
        let server = Server::start(small_index(), PipelineConfig::default());
        server.kill_shard(0);
        server.kill_shard(1);
        let client = server.client();
        let err = client.predict(vec![0.1, -0.2]).unwrap_err();
        assert_eq!(err, ServeError::AllShardsDown { shards: 2 });
        drop(client);
        let snap = server.shutdown();
        assert_eq!(snap.accepted, 1);
        assert_eq!(snap.completed, 0);
        assert_eq!(snap.failed, 1);
    }

    #[test]
    fn dimension_mismatch_is_rejected_before_admission() {
        let server = Server::start(small_index(), PipelineConfig::default());
        let client = server.client();
        let err = client.predict(vec![1.0]).unwrap_err();
        assert_eq!(
            err,
            ServeError::DimensionMismatch {
                expected: 2,
                got: 1
            }
        );
        drop(client);
        assert_eq!(server.shutdown().accepted, 0);
    }

    #[test]
    fn shutdown_drains_inflight_work() {
        let config = PipelineConfig {
            queue_capacity: 256,
            workers: 2,
            max_batch: 16,
            linger: Duration::ZERO,
        };
        let server = Server::start(small_index(), config);
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let client = server.client();
                std::thread::spawn(move || {
                    let mut ok = 0u64;
                    for i in 0..50 {
                        let v = (t * 50 + i) as f64 % 7.0;
                        if client.predict(vec![v, -v]).is_ok() {
                            ok += 1;
                        }
                    }
                    ok
                })
            })
            .collect();
        let served: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let snap = server.shutdown();
        assert_eq!(served, 200);
        assert_eq!(snap.completed, 200);
        assert!(snap.batches >= 1);
    }
}
