//! The request pipeline, fronting the event-driven serve core:
//!
//! ```text
//! Client::predict ──try_send──▶ [bounded admission queue] ──▶ select-based
//!        │   │ SLO gate sheds?        │ full?                  dispatcher
//!        │   ▼                        ▼                          │ batch, route,
//!        │  Err(SloShed)       Err(Overloaded)                   ▼ scale, steal
//!        ◀──────────────── reply channel ◀──────────────── shard workers
//! ```
//!
//! Backpressure is structural *and* SLO-aware: admission is a `try_send`
//! into a bounded crossbeam channel (a full queue sheds with a typed
//! [`ServeError::Overloaded`]), and when the server runs with an
//! [`crate::admission::AdmissionConfig`], a lock-free gate published by
//! the dispatcher sheds with [`ServeError::SloShed`] whenever the
//! predicted p99 breaches the objective — before the request ever
//! occupies a queue slot. Batching, routing, elastic shard scaling and
//! work stealing all live in the [`crate::dispatch`] select loop; this
//! module owns the public handles around it.
//! Shutdown is graceful: dropping the last sender lets the dispatcher
//! drain every admitted request before the workers exit, and the server
//! audits every channel afterwards (`serve_stranded_requests`).
//!
//! The index is **hot-swappable**: the server holds the model behind a
//! [`ModelSlot`] (an `Arc` slot guarded by an `RwLock`), each micro-batch
//! pins the current `Arc<ShardedIndex>` for its whole scan, and
//! [`Server::swap_model`] installs a new generation with one short write
//! lock — in-flight batches finish on the generation they pinned while
//! every subsequent batch sees the new one. No request is ever dropped or
//! failed by a swap.

use crate::dispatch::{self, Control, DispatchConfig, DispatchCore};
use crate::error::ServeError;
use crate::index::ShardedIndex;
use crate::metrics::{ServeMetrics, Snapshot};
use crossbeam_channel::{bounded, Sender, TrySendError};
use kmeans_core::Scalar;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

/// Tuning knobs for the request pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Bounded admission-queue capacity; the backpressure limit.
    pub queue_capacity: usize,
    /// Worker threads forming and executing micro-batches.
    pub workers: usize,
    /// Largest micro-batch a worker will form.
    pub max_batch: usize,
    /// How long a worker waits for stragglers after the first request of a
    /// batch arrives. Zero disables lingering (pure drain batching).
    pub linger: Duration,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            queue_capacity: 1024,
            workers: 2,
            max_batch: 64,
            linger: Duration::from_micros(200),
        }
    }
}

/// Event-tracing hooks for a server ([`PipelineConfig`] stays `Copy`, so
/// the `Arc`s live here). Both halves are optional and independent:
///
/// * `buffer` — per-request pipeline tracing. Admission draws a trace id
///   from the buffer (respecting its 1-in-N sampling); sampled requests get
///   `queue_wait` / `execute` / `assign_shard` / `request` spans on the
///   handling worker's track, and their ids feed the slow-request
///   exemplars ([`ServeMetrics::exemplars`]).
/// * `flight` — a triggered [`FlightRecorder`](swkm_obs::FlightRecorder).
///   The server trips it on `AllShardsDown` batch failures, on the first
///   shard-failover re-dispatches, and on every model hot-swap, dumping
///   the last events for post-mortem without any collector running.
#[derive(Clone, Default)]
pub struct ServeTracing {
    pub buffer: Option<Arc<swkm_obs::TraceBuffer>>,
    pub flight: Option<Arc<swkm_obs::FlightRecorder>>,
}

impl ServeTracing {
    /// Tracing with both halves wired to the same buffer-backed recorder.
    pub fn new(
        buffer: Arc<swkm_obs::TraceBuffer>,
        flight: Option<Arc<swkm_obs::FlightRecorder>>,
    ) -> Self {
        ServeTracing {
            buffer: Some(buffer),
            flight,
        }
    }
}

impl std::fmt::Debug for ServeTracing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeTracing")
            .field("buffer", &self.buffer.is_some())
            .field("flight", &self.flight.is_some())
            .finish()
    }
}

/// A served prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Nearest-centroid label.
    pub label: u32,
    /// True when dead shards were skipped while answering: the label is
    /// the argmin over the *surviving* centroids only (partial
    /// degradation), not a full-index answer.
    pub degraded: bool,
    /// Trace id of this request's pipeline spans — nonzero only when the
    /// server traces ([`ServeTracing::buffer`]) and this request was
    /// sampled. Grep the exported Chrome trace for it to see the request's
    /// whole path.
    pub trace_id: u64,
}

pub(crate) struct Job<S> {
    pub(crate) sample: Vec<S>,
    pub(crate) enqueued: Instant,
    /// Nonzero when this request is traced (sampled at admission).
    pub(crate) trace_id: u64,
    /// Admission timestamp on the trace-buffer clock (0 when untraced).
    pub(crate) enqueued_ns: u64,
    pub(crate) reply: Sender<Result<Prediction, ServeError>>,
}

/// The hot-swappable model slot shared by the server handle and every
/// worker. Readers pin the current index with one cheap `Arc` clone per
/// micro-batch; [`Server::swap_model`] replaces it under a short write
/// lock. The generation number is what observability reports.
pub struct ModelSlot<S: Scalar> {
    index: RwLock<Arc<ShardedIndex<S>>>,
    generation: AtomicU64,
}

impl<S: Scalar> ModelSlot<S> {
    fn new(index: ShardedIndex<S>, generation: u64) -> Self {
        ModelSlot {
            index: RwLock::new(Arc::new(index)),
            generation: AtomicU64::new(generation),
        }
    }

    /// Pin the current index. The returned `Arc` stays valid across swaps,
    /// so a batch mid-scan is never yanked to a different generation.
    pub fn current(&self) -> Arc<ShardedIndex<S>> {
        Arc::clone(&self.index.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Generation of the currently-installed index.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    fn install(&self, index: ShardedIndex<S>, generation: u64) {
        *self.index.write().unwrap_or_else(|e| e.into_inner()) = Arc::new(index);
        self.generation.store(generation, Ordering::SeqCst);
    }
}

/// A running prediction server. Dropping every [`Client`] and calling
/// [`Server::shutdown`] drains the queue and joins the workers.
pub struct Server<S: Scalar> {
    core: Option<DispatchCore<S>>,
    metrics: Arc<ServeMetrics>,
    slot: Arc<ModelSlot<S>>,
    dim: usize,
    config: DispatchConfig,
    tracing: ServeTracing,
}

impl<S: Scalar> Server<S> {
    /// Spawn the worker pool and start serving with a private metrics
    /// registry (see [`Server::start_with_registry`] to share one).
    pub fn start(index: ShardedIndex<S>, config: PipelineConfig) -> Self {
        Self::start_with_registry(index, config, swkm_obs::MetricsRegistry::shared())
    }

    /// Spawn the worker pool recording `serve_*` metrics into an existing
    /// registry, so one process exports training and serving metrics as a
    /// single document.
    pub fn start_with_registry(
        index: ShardedIndex<S>,
        config: PipelineConfig,
        registry: Arc<swkm_obs::MetricsRegistry>,
    ) -> Self {
        Self::start_traced(index, config, registry, ServeTracing::default())
    }

    /// [`Server::start_with_registry`] with event tracing and/or a flight
    /// recorder attached (see [`ServeTracing`]). Legacy entry point: runs
    /// on the event-driven core with a fixed pool of `config.workers`
    /// shards and no SLO admission.
    pub fn start_traced(
        index: ShardedIndex<S>,
        config: PipelineConfig,
        registry: Arc<swkm_obs::MetricsRegistry>,
        tracing: ServeTracing,
    ) -> Self {
        assert!(config.workers > 0, "need at least one worker");
        Self::start_dispatch(index, DispatchConfig::from(config), registry, tracing)
    }

    /// Start the event-driven serve core with full control over batching,
    /// elastic shard scaling and SLO-aware admission (see
    /// [`DispatchConfig`]).
    pub fn start_dispatch(
        index: ShardedIndex<S>,
        config: DispatchConfig,
        registry: Arc<swkm_obs::MetricsRegistry>,
        tracing: ServeTracing,
    ) -> Self {
        registry.gauge_set("serve_assign_kernel", index.kernel().code() as f64);
        registry.gauge_set("serve_model_generation", 0.0);
        let metrics = Arc::new(ServeMetrics::with_registry(registry));
        let dim = index.dim();
        let slot = Arc::new(ModelSlot::new(index, 0));
        let core = dispatch::start(
            Arc::clone(&slot),
            Arc::clone(&metrics),
            config,
            tracing.clone(),
        );
        Server {
            core: Some(core),
            metrics,
            slot,
            dim,
            config,
            tracing,
        }
    }

    fn core(&self) -> &DispatchCore<S> {
        self.core.as_ref().expect("server already shut down")
    }

    /// A handle for issuing predictions; cheap to clone, safe to share
    /// across threads. All clients must be dropped before
    /// [`Server::shutdown`] can finish draining.
    pub fn client(&self) -> Client<S> {
        let core = self.core();
        Client {
            sender: core.ingress.clone(),
            gate: Arc::clone(&core.gate),
            metrics: Arc::clone(&self.metrics),
            dim: self.dim,
            capacity: self.config.queue_capacity,
            trace: self.tracing.buffer.clone(),
        }
    }

    /// Current metrics view, including live queue depth.
    pub fn snapshot(&self) -> Snapshot {
        let depth = self.core.as_ref().map_or(0, |c| c.ingress.len());
        self.metrics.snapshot(depth)
    }

    /// Slow-request exemplars `(total_ns, trace_id)`, slowest first —
    /// nonempty only when tracing is attached and requests were sampled
    /// (see [`ServeMetrics::exemplars`]).
    pub fn exemplars(&self) -> Vec<(u64, u64)> {
        self.metrics.exemplars()
    }

    /// The metrics registry this server records into — hand it to the
    /// `swkm_obs` exporters for JSON/Prometheus output.
    pub fn registry(&self) -> &Arc<swkm_obs::MetricsRegistry> {
        self.metrics.registry()
    }

    /// Pin the currently-installed index (the model the *next* batch will
    /// scan; in-flight batches may still hold an older generation).
    pub fn current_index(&self) -> Arc<ShardedIndex<S>> {
        self.slot.current()
    }

    /// Generation number of the currently-installed model (0 = the index
    /// the server started with).
    pub fn generation(&self) -> u64 {
        self.slot.generation()
    }

    /// Zero-downtime hot swap: atomically install `index` as generation
    /// `generation`. Micro-batches already scanning keep the generation
    /// they pinned; every batch formed after this call sees the new one —
    /// no request is dropped, failed or answered with a torn model. The
    /// new index must match the served dimensionality (clients admit
    /// against it); a mismatch is a typed error and the old model keeps
    /// serving. Returns the previous generation.
    ///
    /// Swapping also resets shard liveness: the incoming index arrives
    /// with every shard alive, healing any injected shard kills.
    pub fn swap_model(&self, index: ShardedIndex<S>, generation: u64) -> Result<u64, ServeError> {
        if index.dim() != self.dim {
            return Err(ServeError::DimensionMismatch {
                expected: self.dim,
                got: index.dim(),
            });
        }
        let start = Instant::now();
        let previous = self.slot.generation();
        self.slot.install(index, generation);
        self.metrics
            .record_swap(generation, start.elapsed().as_nanos() as u64);
        // A hot swap is a flight-recorder trigger: the dump preserves the
        // traffic and timings around the generation change.
        if let Some(flight) = &self.tracing.flight {
            flight.trigger("model_swap");
        }
        // Tell the select loop (advisory: the swap is already visible to
        // every batch formed from here on; the dispatcher just records it
        // on its own track). A disconnect race at shutdown is harmless.
        let _ = self
            .core()
            .control
            .send(Control::SwapObserved { generation });
        Ok(previous)
    }

    /// Simulate a shard crash while serving: subsequent batches re-dispatch
    /// to the surviving shards and replies carry
    /// [`Prediction::degraded`]`== true`. Returns whether the shard was
    /// alive. Admitted requests are never lost — with every shard down
    /// they fail with a typed [`ServeError::AllShardsDown`]. (Kills apply
    /// to the current generation; a [`Server::swap_model`] heals them.)
    pub fn kill_shard(&self, shard: usize) -> bool {
        let killed = self.slot.current().kill_shard(shard);
        if killed {
            let _ = self.core().control.send(Control::ShardKilled { shard });
        }
        killed
    }

    /// Stop admitting work, drain every already-admitted request, join the
    /// dispatcher and workers, audit every channel for stranded requests
    /// and return the final metrics. Requires all [`Client`] handles to
    /// have been dropped (they hold the admission queue open).
    pub fn shutdown(mut self) -> Snapshot {
        let core = self.core.take().expect("server already shut down");
        let stranded = core.shutdown();
        self.metrics.record_stranded(stranded);
        self.metrics.snapshot(0)
    }
}

/// A request-issuing handle onto a running [`Server`].
pub struct Client<S: Scalar> {
    sender: Sender<Job<S>>,
    gate: Arc<crate::dispatch::AdmissionGate>,
    metrics: Arc<ServeMetrics>,
    dim: usize,
    capacity: usize,
    trace: Option<Arc<swkm_obs::TraceBuffer>>,
}

impl<S: Scalar> Clone for Client<S> {
    fn clone(&self) -> Self {
        Client {
            sender: self.sender.clone(),
            gate: Arc::clone(&self.gate),
            metrics: Arc::clone(&self.metrics),
            dim: self.dim,
            capacity: self.capacity,
            trace: self.trace.clone(),
        }
    }
}

impl<S: Scalar> Client<S> {
    /// Closed-loop predict: non-blocking admission (sheds with
    /// [`ServeError::SloShed`] while the admission controller predicts an
    /// SLO breach, or [`ServeError::Overloaded`] when the queue is full),
    /// then blocks until the worker replies.
    pub fn predict(&self, sample: Vec<S>) -> Result<Prediction, ServeError> {
        if sample.len() != self.dim {
            return Err(ServeError::DimensionMismatch {
                expected: self.dim,
                got: sample.len(),
            });
        }
        // SLO-aware shed: checked before the request costs a queue slot
        // (or a trace id).
        if let Err(e) = self.gate.check() {
            self.metrics.record_admission_shed();
            return Err(e);
        }
        // Draw a trace id at admission; sampling decides whether this
        // request's pipeline is recorded (0 = untraced fast path).
        let (trace_id, enqueued_ns) = match &self.trace {
            Some(buf) if buf.enabled() => {
                let id = buf.next_trace_id();
                if buf.sample_hit(id) {
                    (id, buf.now_ns())
                } else {
                    (0, 0)
                }
            }
            _ => (0, 0),
        };
        let (reply_tx, reply_rx) = bounded(1);
        let job = Job {
            sample,
            enqueued: Instant::now(),
            trace_id,
            enqueued_ns,
            reply: reply_tx,
        };
        match self.sender.try_send(job) {
            Ok(()) => self.metrics.record_accepted(),
            Err(TrySendError::Full(_)) => {
                self.metrics.record_rejected();
                return Err(ServeError::Overloaded {
                    queue_depth: self.sender.len(),
                    capacity: self.capacity,
                });
            }
            Err(TrySendError::Disconnected(_)) => return Err(ServeError::ShuttingDown),
        }
        reply_rx.recv().map_err(|_| ServeError::ShuttingDown)?
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kmeans_core::Matrix;

    fn small_index() -> ShardedIndex<f64> {
        let centroids = Matrix::from_rows(&[
            &[0.0f64, 0.0],
            &[10.0, 10.0],
            &[-10.0, 10.0],
            &[10.0, -10.0],
        ]);
        ShardedIndex::new(centroids, 2)
    }

    #[test]
    fn predictions_flow_end_to_end() {
        let server = Server::start(small_index(), PipelineConfig::default());
        let client = server.client();
        assert_eq!(client.predict(vec![0.1, -0.2]).unwrap().label, 0);
        assert_eq!(client.predict(vec![9.0, 9.0]).unwrap().label, 1);
        drop(client);
        let snap = server.shutdown();
        assert_eq!(snap.completed, 2);
        assert_eq!(snap.accepted, 2);
    }

    #[test]
    fn killed_shard_degrades_but_keeps_serving() {
        let server = Server::start(small_index(), PipelineConfig::default());
        let client = server.client();
        let healthy = client.predict(vec![0.1, -0.2]).unwrap();
        assert!(!healthy.degraded);
        // Kill the shard owning centroids {0, 1}: queries near centroid 0
        // must fail over to the surviving shard's centroids {2, 3}.
        assert!(server.kill_shard(0));
        let degraded = client.predict(vec![0.1, -0.2]).unwrap();
        assert!(degraded.degraded);
        assert!(
            degraded.label >= 2,
            "label {} from a dead shard",
            degraded.label
        );
        drop(client);
        let snap = server.shutdown();
        assert_eq!(snap.completed, 2);
        assert!(snap.shard_failovers >= 1);
        assert_eq!(snap.failed, 0);
    }

    #[test]
    fn all_shards_down_fails_requests_with_typed_error() {
        // Regression for the unwrap()/expect() audit: with every shard
        // dead, admitted requests must be answered with AllShardsDown —
        // not panic a worker, not hang the client.
        let server = Server::start(small_index(), PipelineConfig::default());
        server.kill_shard(0);
        server.kill_shard(1);
        let client = server.client();
        let err = client.predict(vec![0.1, -0.2]).unwrap_err();
        assert_eq!(err, ServeError::AllShardsDown { shards: 2 });
        drop(client);
        let snap = server.shutdown();
        assert_eq!(snap.accepted, 1);
        assert_eq!(snap.completed, 0);
        assert_eq!(snap.failed, 1);
    }

    #[test]
    fn dimension_mismatch_is_rejected_before_admission() {
        let server = Server::start(small_index(), PipelineConfig::default());
        let client = server.client();
        let err = client.predict(vec![1.0]).unwrap_err();
        assert_eq!(
            err,
            ServeError::DimensionMismatch {
                expected: 2,
                got: 1
            }
        );
        drop(client);
        assert_eq!(server.shutdown().accepted, 0);
    }

    #[test]
    fn hot_swap_changes_answers_without_dropping_requests() {
        let v1 = Matrix::from_rows(&[&[0.0f64, 0.0], &[10.0, 10.0]]);
        // Generation 2 swaps the roles of the two centroids.
        let v2 = Matrix::from_rows(&[&[10.0f64, 10.0], &[0.0, 0.0]]);
        let server = Server::start(ShardedIndex::new(v1, 2), PipelineConfig::default());
        let client = server.client();
        assert_eq!(client.predict(vec![9.0, 9.0]).unwrap().label, 1);
        assert_eq!(server.generation(), 0);
        let previous = server.swap_model(ShardedIndex::new(v2, 2), 7).unwrap();
        assert_eq!(previous, 0);
        assert_eq!(server.generation(), 7);
        assert_eq!(client.predict(vec![9.0, 9.0]).unwrap().label, 0);
        drop(client);
        let snap = server.shutdown();
        assert_eq!(snap.completed, 2);
        assert_eq!(snap.failed, 0);
        assert_eq!(snap.model_swaps, 1);
    }

    #[test]
    fn swap_rejects_dimension_mismatch_and_keeps_serving_old_model() {
        let server = Server::start(small_index(), PipelineConfig::default());
        let narrow = ShardedIndex::new(Matrix::from_rows(&[&[1.0f64, 2.0, 3.0]]), 1);
        let err = server.swap_model(narrow, 1).unwrap_err();
        assert_eq!(
            err,
            ServeError::DimensionMismatch {
                expected: 2,
                got: 3
            }
        );
        assert_eq!(server.generation(), 0);
        let client = server.client();
        assert_eq!(client.predict(vec![0.1, -0.2]).unwrap().label, 0);
        drop(client);
        assert_eq!(server.shutdown().model_swaps, 0);
    }

    #[test]
    fn swap_heals_killed_shards() {
        let server = Server::start(small_index(), PipelineConfig::default());
        let client = server.client();
        assert!(server.kill_shard(0));
        assert!(client.predict(vec![0.1, -0.2]).unwrap().degraded);
        server.swap_model(small_index(), 1).unwrap();
        assert!(!client.predict(vec![0.1, -0.2]).unwrap().degraded);
        drop(client);
        server.shutdown();
    }

    #[test]
    fn swaps_under_concurrent_load_lose_nothing() {
        let config = PipelineConfig {
            queue_capacity: 512,
            workers: 3,
            max_batch: 16,
            linger: Duration::from_micros(50),
        };
        let server = Server::start(small_index(), config);
        let swaps = 20u64;
        let served: u64 = std::thread::scope(|scope| {
            let clients: Vec<_> = (0..4)
                .map(|t| {
                    let client = server.client();
                    scope.spawn(move || {
                        let mut ok = 0u64;
                        for i in 0..250 {
                            let v = (t * 250 + i) as f64 % 11.0;
                            if client.predict(vec![v, -v]).is_ok() {
                                ok += 1;
                            }
                        }
                        ok
                    })
                })
                .collect();
            for g in 1..=swaps {
                server.swap_model(small_index(), g).unwrap();
                std::thread::sleep(Duration::from_micros(200));
            }
            clients.into_iter().map(|h| h.join().unwrap()).sum()
        });
        let snap = server.shutdown();
        assert_eq!(served, 1000, "every request answered through 20 swaps");
        assert_eq!(snap.completed, 1000);
        assert_eq!(snap.failed, 0);
        assert_eq!(snap.model_swaps, swaps);
        assert_eq!(snap.accepted, snap.completed + snap.failed);
    }

    fn traced_server(
        index: ShardedIndex<f64>,
        sample_every: u64,
    ) -> (
        Server<f64>,
        Arc<swkm_obs::TraceBuffer>,
        Arc<swkm_obs::MemSink>,
    ) {
        let buf = Arc::new(swkm_obs::TraceBuffer::with_sampling(4096, sample_every));
        let sink = Arc::new(swkm_obs::MemSink::new());
        let flight = Arc::new(swkm_obs::FlightRecorder::new(
            Arc::clone(&buf),
            Box::new(Arc::clone(&sink)),
            8,
            1024,
        ));
        let server = Server::start_traced(
            index,
            PipelineConfig::default(),
            swkm_obs::MetricsRegistry::shared(),
            ServeTracing::new(Arc::clone(&buf), Some(flight)),
        );
        (server, buf, sink)
    }

    #[test]
    fn traced_requests_emit_pipeline_spans_and_exemplars() {
        let (server, buf, _sink) = traced_server(small_index(), 1);
        let client = server.client();
        let mut ids = Vec::new();
        for i in 0..8 {
            let p = client.predict(vec![i as f64, -(i as f64)]).unwrap();
            assert_ne!(p.trace_id, 0, "sample_every=1 traces every request");
            ids.push(p.trace_id);
        }
        drop(client);
        let exemplars = server.exemplars();
        server.shutdown();
        // Each traced request has its full pipeline: queue_wait + request
        // spans tagged with its id, plus execute/assign_shard on the batch.
        let events = buf.snapshot();
        for &id in &ids {
            for stage in ["queue_wait", "request"] {
                assert!(
                    events.iter().any(|e| e.name == stage && e.trace_id == id),
                    "missing {stage} span for trace {id}"
                );
            }
        }
        assert!(events.iter().any(|e| e.name == "execute"));
        assert!(events.iter().any(|e| e.name == "assign_shard"));
        // Exemplars: bounded, sorted slowest-first, ids drawn from ours.
        assert!(!exemplars.is_empty() && exemplars.len() <= crate::EXEMPLAR_K);
        assert!(exemplars.windows(2).all(|w| w[0].0 >= w[1].0));
        for (_, id) in &exemplars {
            assert!(ids.contains(id));
        }
    }

    #[test]
    fn sampling_traces_one_in_n() {
        let (server, _buf, _sink) = traced_server(small_index(), 2);
        let client = server.client();
        // Ids are drawn sequentially from 1; 1-in-2 sampling keeps even
        // ids, so consecutive requests alternate untraced/traced.
        let first = client.predict(vec![1.0, 1.0]).unwrap();
        let second = client.predict(vec![1.0, 1.0]).unwrap();
        assert_eq!(first.trace_id, 0);
        assert_ne!(second.trace_id, 0);
        drop(client);
        server.shutdown();
    }

    #[test]
    fn flight_recorder_trips_on_all_shards_down_and_swap() {
        let (server, _buf, sink) = traced_server(small_index(), 1);
        server.kill_shard(0);
        server.kill_shard(1);
        let client = server.client();
        let err = client.predict(vec![0.1, -0.2]).unwrap_err();
        assert_eq!(err, ServeError::AllShardsDown { shards: 2 });
        // The failed batch dumped the recent past for post-mortem.
        assert!(sink.names().iter().any(|n| n.contains("all_shards_down")));
        // A hot swap is also a trigger (and heals the shards).
        server.swap_model(small_index(), 1).unwrap();
        assert!(sink.names().iter().any(|n| n.contains("model_swap")));
        assert!(client.predict(vec![0.1, -0.2]).is_ok());
        drop(client);
        server.shutdown();
    }

    #[test]
    fn degraded_batches_trip_the_shard_failover_trigger() {
        let (server, buf, sink) = traced_server(small_index(), 1);
        server.kill_shard(0);
        let client = server.client();
        assert!(client.predict(vec![0.1, -0.2]).unwrap().degraded);
        drop(client);
        server.shutdown();
        assert!(sink.names().iter().any(|n| n.contains("shard_failover")));
        assert!(buf.snapshot().iter().any(|e| e.name == "shard_failover"));
    }

    #[test]
    fn untraced_server_reports_zero_trace_ids() {
        let server = Server::start(small_index(), PipelineConfig::default());
        let client = server.client();
        assert_eq!(client.predict(vec![0.1, -0.2]).unwrap().trace_id, 0);
        drop(client);
        assert!(server.exemplars().is_empty());
        server.shutdown();
    }

    #[test]
    fn shutdown_drains_inflight_work() {
        let config = PipelineConfig {
            queue_capacity: 256,
            workers: 2,
            max_batch: 16,
            linger: Duration::ZERO,
        };
        let server = Server::start(small_index(), config);
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let client = server.client();
                std::thread::spawn(move || {
                    let mut ok = 0u64;
                    for i in 0..50 {
                        let v = (t * 50 + i) as f64 % 7.0;
                        if client.predict(vec![v, -v]).is_ok() {
                            ok += 1;
                        }
                    }
                    ok
                })
            })
            .collect();
        let served: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let snap = server.shutdown();
        assert_eq!(served, 200);
        assert_eq!(snap.completed, 200);
        assert!(snap.batches >= 1);
    }
}
