//! Versioned, checksummed model artifacts.
//!
//! A trained model (centroids + shape metadata + optional preprocessing
//! statistics) is frozen into a self-describing binary blob:
//!
//! ```text
//! [ magic 8B ][ version u32 ][ dtype u8 ][ body … ][ crc32 u32 ]
//! ```
//!
//! The CRC covers everything before it, so a flipped bit anywhere —
//! header or body — is caught before decoding. The version is checked
//! *before* the checksum so a reader meeting a future format reports
//! [`ArtifactError::VersionMismatch`] rather than a misleading checksum
//! failure. The dtype byte (element width) keeps an `f32` model from being
//! silently reinterpreted as `f64`.

use kmeans_core::{ColumnStats, Matrix, Scalar};
use serde::{DecodeError, Deserialize, Serialize};
use std::path::Path;

/// File signature; never changes across versions.
pub const MAGIC: [u8; 8] = *b"SWKM-MDL";

/// Current artifact format version.
pub const FORMAT_VERSION: u32 = 1;

/// What can go wrong reading or writing an artifact.
#[derive(Debug)]
pub enum ArtifactError {
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`] — not an artifact at all.
    BadMagic,
    /// Artifact written by an incompatible format revision.
    VersionMismatch {
        found: u32,
        supported: u32,
    },
    /// The payload does not hash to the stored checksum — corruption.
    ChecksumMismatch {
        stored: u32,
        computed: u32,
    },
    /// Element width disagrees with the requested scalar type.
    DtypeMismatch {
        expected: u8,
        found: u8,
    },
    /// Structurally undecodable payload.
    Corrupt(DecodeError),
    /// Decoded fields are mutually inconsistent.
    ShapeInvalid(&'static str),
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "artifact I/O error: {e}"),
            ArtifactError::BadMagic => write!(f, "not a model artifact (bad magic)"),
            ArtifactError::VersionMismatch { found, supported } => {
                write!(
                    f,
                    "artifact format v{found}, this build supports v{supported}"
                )
            }
            ArtifactError::ChecksumMismatch { stored, computed } => write!(
                f,
                "artifact corrupted: checksum {computed:08x}, expected {stored:08x}"
            ),
            ArtifactError::DtypeMismatch { expected, found } => write!(
                f,
                "artifact holds {found}-byte elements, expected {expected}-byte"
            ),
            ArtifactError::Corrupt(e) => write!(f, "artifact payload undecodable: {e}"),
            ArtifactError::ShapeInvalid(why) => write!(f, "artifact inconsistent: {why}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<std::io::Error> for ArtifactError {
    fn from(e: std::io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

impl From<DecodeError> for ArtifactError {
    fn from(e: DecodeError) -> Self {
        ArtifactError::Corrupt(e)
    }
}

/// Training provenance stored alongside the centroids.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelMeta {
    /// Samples the model was trained on (0 for hand-built centroid sets).
    pub trained_samples: u64,
    /// Number of centroids.
    pub k: usize,
    /// Dimensionality.
    pub d: usize,
    /// Lloyd iterations executed during training.
    pub iterations: u64,
    /// Final mean objective at convergence.
    pub objective: f64,
    /// Whether training converged before the iteration cap.
    pub converged: bool,
}

impl Serialize for ModelMeta {
    fn serialize(&self, out: &mut Vec<u8>) {
        self.trained_samples.serialize(out);
        self.k.serialize(out);
        self.d.serialize(out);
        self.iterations.serialize(out);
        self.objective.serialize(out);
        self.converged.serialize(out);
    }
}

impl Deserialize for ModelMeta {
    fn deserialize(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(ModelMeta {
            trained_samples: u64::deserialize(input)?,
            k: usize::deserialize(input)?,
            d: usize::deserialize(input)?,
            iterations: u64::deserialize(input)?,
            objective: f64::deserialize(input)?,
            converged: bool::deserialize(input)?,
        })
    }
}

/// A frozen model: everything `predict` needs, nothing training needs.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelArtifact<S: Scalar> {
    pub meta: ModelMeta,
    /// `k × d` centroid matrix.
    pub centroids: Matrix<S>,
    /// Per-column statistics of the training data, when the model was
    /// trained on standardized features. `predict` must apply the same
    /// transform to incoming samples.
    pub stats: Option<ColumnStats>,
}

impl<S: Scalar + Serialize + Deserialize> ModelArtifact<S> {
    /// Freeze a training result.
    pub fn new(
        trained_samples: u64,
        centroids: Matrix<S>,
        iterations: u64,
        objective: f64,
        converged: bool,
        stats: Option<ColumnStats>,
    ) -> Self {
        let meta = ModelMeta {
            trained_samples,
            k: centroids.rows(),
            d: centroids.cols(),
            iterations,
            objective,
            converged,
        };
        ModelArtifact {
            meta,
            centroids,
            stats,
        }
    }

    /// Freeze a bare centroid set (no training run behind it).
    pub fn from_centroids(centroids: Matrix<S>) -> Self {
        Self::new(0, centroids, 0, 0.0, false, None)
    }

    /// Apply the stored preprocessing to a batch of raw samples, making
    /// them comparable with the centroids. No-op when the model was
    /// trained on raw features.
    pub fn preprocess(&self, data: &mut Matrix<S>) {
        if let Some(stats) = &self.stats {
            stats.standardize(data);
        }
    }

    /// Serialize to the framed, checksummed wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.push(S::BYTES as u8);
        self.meta.serialize(&mut out);
        self.centroids.serialize(&mut out);
        self.stats.serialize(&mut out);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parse and validate the wire format. Checks, in order: magic,
    /// version, checksum, dtype, payload structure, shape consistency.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ArtifactError> {
        // Smallest conceivable artifact: header + crc.
        if bytes.len() < MAGIC.len() + 4 + 1 + 4 {
            return Err(ArtifactError::BadMagic);
        }
        if bytes[..MAGIC.len()] != MAGIC {
            return Err(ArtifactError::BadMagic);
        }
        let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
        if version != FORMAT_VERSION {
            return Err(ArtifactError::VersionMismatch {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let (payload, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
        let computed = crc32(payload);
        if stored != computed {
            return Err(ArtifactError::ChecksumMismatch { stored, computed });
        }
        let dtype = payload[12];
        if dtype as usize != S::BYTES {
            return Err(ArtifactError::DtypeMismatch {
                expected: S::BYTES as u8,
                found: dtype,
            });
        }
        let mut cursor = &payload[13..];
        let meta = ModelMeta::deserialize(&mut cursor)?;
        let centroids = Matrix::<S>::deserialize(&mut cursor)?;
        let stats = Option::<ColumnStats>::deserialize(&mut cursor)?;
        if !cursor.is_empty() {
            return Err(ArtifactError::ShapeInvalid("trailing payload bytes"));
        }
        if centroids.rows() == 0 {
            return Err(ArtifactError::ShapeInvalid("artifact has no centroids"));
        }
        if meta.k != centroids.rows() || meta.d != centroids.cols() {
            return Err(ArtifactError::ShapeInvalid(
                "metadata shape disagrees with centroid matrix",
            ));
        }
        if let Some(stats) = &stats {
            if stats.mean.len() != meta.d {
                return Err(ArtifactError::ShapeInvalid(
                    "preprocessing stats width disagrees with d",
                ));
            }
        }
        if centroids.as_slice().iter().any(|v| !v.is_finite_s()) {
            return Err(ArtifactError::ShapeInvalid("non-finite centroid value"));
        }
        Ok(ModelArtifact {
            meta,
            centroids,
            stats,
        })
    }

    /// Write the artifact to disk atomically: the bytes go to a uniquely
    /// named sibling temp file, are fsynced, and are renamed over `path` in
    /// one step. A crash mid-write never leaves a truncated artifact at
    /// `path`, and concurrent saves — even to sibling paths that differ
    /// only in extension — never collide on the temp name (each gets a
    /// distinct pid + sequence suffix appended to the full file name, not
    /// substituted for its extension). The temp file is removed if any
    /// step after its creation fails.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ArtifactError> {
        use std::io::Write;
        use std::sync::atomic::{AtomicU64, Ordering};

        static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let path = path.as_ref();
        let file_name = path
            .file_name()
            .ok_or_else(|| {
                ArtifactError::Io(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "artifact path has no file name",
                ))
            })?
            .to_owned();
        let mut tmp_name = file_name;
        tmp_name.push(format!(
            ".{}.{}.tmp",
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let tmp = path.with_file_name(tmp_name);
        let commit = (|| {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(&self.to_bytes())?;
            file.sync_all()?;
            std::fs::rename(&tmp, path)
        })();
        if let Err(e) = commit {
            let _ = std::fs::remove_file(&tmp);
            return Err(ArtifactError::Io(e));
        }
        Ok(())
    }

    /// Read and validate an artifact from disk.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ArtifactError> {
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&bytes)
    }
}

/// CRC-32 (IEEE 802.3, reflected), table-driven.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact() -> ModelArtifact<f64> {
        let centroids = Matrix::from_rows(&[&[0.0f64, 1.0, 2.0], &[3.0, 4.0, 5.0]]);
        ModelArtifact::new(100, centroids, 12, 0.5, true, None)
    }

    #[test]
    fn crc32_known_vector() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn bytes_round_trip() {
        let a = artifact();
        let back = ModelArtifact::<f64>::from_bytes(&a.to_bytes()).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn every_flipped_bit_is_detected() {
        let bytes = artifact().to_bytes();
        // Flip one bit in each byte position; every corruption must be
        // rejected (magic, version, checksum or dtype — never Ok).
        for pos in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x10;
            assert!(
                ModelArtifact::<f64>::from_bytes(&bad).is_err(),
                "flip at byte {pos} went undetected"
            );
        }
    }

    #[test]
    fn version_is_checked_before_checksum() {
        let mut bytes = artifact().to_bytes();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        match ModelArtifact::<f64>::from_bytes(&bytes) {
            Err(ArtifactError::VersionMismatch { found: 99, .. }) => {}
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
    }

    #[test]
    fn dtype_mismatch_is_typed() {
        let bytes = artifact().to_bytes();
        match ModelArtifact::<f32>::from_bytes(&bytes) {
            Err(ArtifactError::DtypeMismatch {
                expected: 4,
                found: 8,
            }) => {}
            other => panic!("expected DtypeMismatch, got {other:?}"),
        }
    }

    #[test]
    fn truncated_file_is_rejected() {
        let bytes = artifact().to_bytes();
        for keep in [0, 4, 12, bytes.len() - 5] {
            assert!(ModelArtifact::<f64>::from_bytes(&bytes[..keep]).is_err());
        }
    }

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "swkm-artifact-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn save_is_atomic_and_leaves_no_temp_droppings() {
        let dir = scratch_dir("atomic");
        let path = dir.join("model.art");
        let a = artifact();
        a.save(&path).unwrap();
        assert_eq!(ModelArtifact::<f64>::load(&path).unwrap(), a);
        // Overwriting an existing artifact is also atomic and clean.
        let b = ModelArtifact::from_centroids(Matrix::from_rows(&[&[9.0f64, 9.0, 9.0]]));
        b.save(&path).unwrap();
        assert_eq!(ModelArtifact::<f64>::load(&path).unwrap(), b);
        let names: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(
            names,
            vec!["model.art".to_string()],
            "temp files left behind"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_saves_to_extension_siblings_do_not_collide() {
        // `path.with_extension("tmp")` would map model.a and model.b to the
        // SAME temp file; the unique-suffix scheme must not.
        let dir = scratch_dir("siblings");
        let a = artifact();
        std::thread::scope(|scope| {
            for ext in ["a", "b", "c", "d"] {
                let path = dir.join(format!("model.{ext}"));
                let a = &a;
                scope.spawn(move || {
                    for _ in 0..50 {
                        a.save(&path).unwrap();
                        assert_eq!(ModelArtifact::<f64>::load(&path).unwrap(), *a);
                    }
                });
            }
        });
        let mut names: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        names.sort();
        assert_eq!(names, ["model.a", "model.b", "model.c", "model.d"]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_into_missing_directory_is_a_typed_io_error() {
        let dir = scratch_dir("missing");
        let path = dir.join("no-such-subdir").join("model.art");
        match artifact().save(&path) {
            Err(ArtifactError::Io(_)) => {}
            other => panic!("expected Io error, got {other:?}"),
        }
        // The failed save left nothing behind.
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_to_bare_root_like_path_is_rejected_not_panicking() {
        match artifact().save("..") {
            Err(ArtifactError::Io(_)) => {}
            other => panic!("expected Io error, got {other:?}"),
        }
    }
}
