//! Closed-loop load generator for `serve-bench`: `clients` threads each
//! issue requests back-to-back (the next request waits for the previous
//! reply), cycling through a pool of query samples. Shed requests
//! ([`ServeError::Overloaded`] and [`ServeError::SloShed`]) are counted,
//! not retried — the report shows exactly how much load the configured
//! queue and SLO gate admitted.
//!
//! [`run_ramp`] layers a deterministic load *ramp* on top: client count
//! climbs linearly from `base_clients` to `peak_clients` and back down,
//! one closed-loop phase per step, so elastic scaling and admission
//! control can be exercised (and asserted on) reproducibly.

use crate::error::ServeError;
use crate::pipeline::Server;
use kmeans_core::{Matrix, Scalar};
use std::time::{Duration, Instant};
use sw_des::stats::Histogram;

/// Load-generation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadGenConfig {
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig {
            clients: 4,
            requests_per_client: 2_500,
        }
    }
}

/// Aggregate result of a load run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    pub issued: u64,
    pub completed: u64,
    /// Requests shed with [`ServeError::Overloaded`] or
    /// [`ServeError::SloShed`].
    pub shed: u64,
    /// Completed requests answered over a subset of the shards
    /// ([`Prediction::degraded`](crate::pipeline::Prediction::degraded)).
    pub degraded: u64,
    /// Requests that failed with a typed error after admission (e.g.
    /// [`ServeError::AllShardsDown`]) — counted, never silently lost.
    pub failed: u64,
    pub elapsed: Duration,
    /// Completed requests per wall-clock second.
    pub qps: f64,
    /// End-to-end latency quantiles over completed requests
    /// (log₂-bucket upper bounds).
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
}

impl LoadReport {
    pub fn shed_fraction(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            self.shed as f64 / self.issued as f64
        }
    }
}

impl std::fmt::Display for LoadReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} issued, {} completed ({} degraded), {} shed ({:.1}%), {} failed in {:.2?} — {:.0} QPS, p50 {:.1}µs, p95 {:.1}µs, p99 {:.1}µs",
            self.issued,
            self.completed,
            self.degraded,
            self.shed,
            self.shed_fraction() * 100.0,
            self.failed,
            self.elapsed,
            self.qps,
            self.p50_ns as f64 / 1e3,
            self.p95_ns as f64 / 1e3,
            self.p99_ns as f64 / 1e3
        )
    }
}

/// Drive a closed-loop load test against a running server. Each client
/// starts at a different offset into `queries` so concurrent clients do
/// not issue identical request streams.
pub fn run_closed_loop<S: Scalar>(
    server: &Server<S>,
    queries: &Matrix<S>,
    config: LoadGenConfig,
) -> LoadReport {
    assert!(queries.rows() > 0, "need at least one query sample");
    assert!(config.clients > 0, "need at least one client");
    let start = Instant::now();
    let per_client: Vec<(u64, u64, u64, u64, Histogram)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.clients)
            .map(|c| {
                let client = server.client();
                scope.spawn(move || {
                    let mut completed = 0u64;
                    let mut shed = 0u64;
                    let mut degraded = 0u64;
                    let mut failed = 0u64;
                    let mut latency = Histogram::new();
                    for i in 0..config.requests_per_client {
                        let row = (c * 7919 + i) % queries.rows();
                        let sample = queries.row(row).to_vec();
                        let issued_at = Instant::now();
                        match client.predict(sample) {
                            Ok(p) => {
                                latency.record(issued_at.elapsed().as_nanos() as u64);
                                completed += 1;
                                if p.degraded {
                                    degraded += 1;
                                }
                            }
                            Err(ServeError::Overloaded { .. })
                            | Err(ServeError::SloShed { .. }) => shed += 1,
                            // Shard crashes mid-run are an expected fault-
                            // injection outcome: count them, don't panic.
                            Err(_) => failed += 1,
                        }
                    }
                    (completed, shed, degraded, failed, latency)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = start.elapsed();
    let mut latency = Histogram::new();
    let (mut completed, mut shed, mut degraded, mut failed) = (0u64, 0u64, 0u64, 0u64);
    for (c, s, dg, fl, hist) in &per_client {
        completed += c;
        shed += s;
        degraded += dg;
        failed += fl;
        latency.merge(hist);
    }
    let issued = (config.clients * config.requests_per_client) as u64;
    LoadReport {
        issued,
        completed,
        shed,
        degraded,
        failed,
        elapsed,
        qps: completed as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_ns: latency.quantile_upper_bound(0.5),
        p95_ns: latency.quantile_upper_bound(0.95),
        p99_ns: latency.quantile_upper_bound(0.99),
    }
}

/// Parameters for a deterministic load ramp: client count climbs
/// linearly from `base_clients` to `peak_clients` over `steps_up`
/// phases, then mirrors back down (the peak phase is not repeated).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RampConfig {
    /// Clients in the first (and last) phase.
    pub base_clients: usize,
    /// Clients at the top of the ramp.
    pub peak_clients: usize,
    /// Phases from base to peak, inclusive of both endpoints.
    pub steps_up: usize,
    /// Requests each client issues per phase.
    pub requests_per_client: usize,
}

impl Default for RampConfig {
    fn default() -> Self {
        RampConfig {
            base_clients: 1,
            peak_clients: 10,
            steps_up: 4,
            requests_per_client: 500,
        }
    }
}

impl RampConfig {
    /// The per-phase client counts: `steps_up` points interpolated from
    /// base to peak, then the same points mirrored back down without
    /// repeating the peak. `base 1, peak 10, steps 4` → `[1, 4, 7, 10,
    /// 7, 4, 1]`.
    pub fn profile(&self) -> Vec<usize> {
        assert!(self.base_clients > 0, "need at least one base client");
        assert!(
            self.peak_clients >= self.base_clients,
            "peak must be at least the base client count"
        );
        assert!(self.steps_up >= 1, "need at least one ramp step");
        let mut up: Vec<usize> = if self.steps_up == 1 {
            vec![self.peak_clients]
        } else {
            let span = (self.peak_clients - self.base_clients) as f64;
            let denom = (self.steps_up - 1) as f64;
            (0..self.steps_up)
                .map(|i| self.base_clients + (span * i as f64 / denom).round() as usize)
                .collect()
        };
        let down: Vec<usize> = up.iter().rev().skip(1).copied().collect();
        up.extend(down);
        up
    }
}

/// One phase of a ramp: the client count driven and what came back.
#[derive(Debug, Clone, PartialEq)]
pub struct RampPhase {
    pub clients: usize,
    pub report: LoadReport,
}

/// Full result of a ramp run, one entry per phase in profile order.
#[derive(Debug, Clone, PartialEq)]
pub struct RampReport {
    pub phases: Vec<RampPhase>,
}

impl RampReport {
    pub fn issued(&self) -> u64 {
        self.phases.iter().map(|p| p.report.issued).sum()
    }

    pub fn completed(&self) -> u64 {
        self.phases.iter().map(|p| p.report.completed).sum()
    }

    pub fn shed(&self) -> u64 {
        self.phases.iter().map(|p| p.report.shed).sum()
    }

    pub fn failed(&self) -> u64 {
        self.phases.iter().map(|p| p.report.failed).sum()
    }

    /// The load-generator side of the conservation invariant: every
    /// issued request came back as a completion, a shed, or a typed
    /// failure. Holds per phase, so it holds for the whole ramp.
    pub fn conserved(&self) -> bool {
        self.phases
            .iter()
            .all(|p| p.report.issued == p.report.completed + p.report.shed + p.report.failed)
    }

    /// Largest per-phase p99 across the ramp, nanoseconds.
    pub fn worst_p99_ns(&self) -> u64 {
        self.phases.iter().map(|p| p.report.p99_ns).max().unwrap_or(0)
    }

    /// The ramp as a JSON document (no serde in the workspace): one
    /// object per phase with latency quantiles and shed fraction, plus
    /// the totals — the schema behind `BENCH_serve_ramp.json` and
    /// `serve-bench --ramp-json`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"phases\": [\n");
        for (i, phase) in self.phases.iter().enumerate() {
            let r = &phase.report;
            out.push_str(&format!(
                "    {{\"clients\": {}, \"issued\": {}, \"completed\": {}, \"shed\": {}, \
                 \"failed\": {}, \"shed_fraction\": {:.6}, \"qps\": {:.1}, \
                 \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}}}{}\n",
                phase.clients,
                r.issued,
                r.completed,
                r.shed,
                r.failed,
                r.shed_fraction(),
                r.qps,
                r.p50_ns,
                r.p95_ns,
                r.p99_ns,
                if i + 1 < self.phases.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!(
            "  ],\n  \"total\": {{\"issued\": {}, \"completed\": {}, \"shed\": {}, \
             \"failed\": {}, \"conserved\": {}, \"worst_p99_ns\": {}}}\n}}\n",
            self.issued(),
            self.completed(),
            self.shed(),
            self.failed(),
            self.conserved(),
            self.worst_p99_ns()
        ));
        out
    }
}

impl std::fmt::Display for RampReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, phase) in self.phases.iter().enumerate() {
            writeln!(
                f,
                "phase {i} ({} client(s)): {}",
                phase.clients, phase.report
            )?;
        }
        write!(
            f,
            "ramp total: {} issued, {} completed, {} shed, {} failed, conserved={}",
            self.issued(),
            self.completed(),
            self.shed(),
            self.failed(),
            self.conserved()
        )
    }
}

/// Drive the ramp profile against a running server, one closed-loop
/// phase per step. Phases run back-to-back; between phases all clients
/// from the previous phase have drained (closed-loop clients join
/// before the phase returns), so the server sees a clean step change.
pub fn run_ramp<S: Scalar>(
    server: &Server<S>,
    queries: &Matrix<S>,
    config: RampConfig,
) -> RampReport {
    let phases = config
        .profile()
        .into_iter()
        .map(|clients| {
            let report = run_closed_loop(
                server,
                queries,
                LoadGenConfig {
                    clients,
                    requests_per_client: config.requests_per_client,
                },
            );
            RampPhase { clients, report }
        })
        .collect();
    RampReport { phases }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::ShardedIndex;
    use crate::pipeline::PipelineConfig;

    #[test]
    fn closed_loop_completes_everything_with_ample_queue() {
        let centroids = Matrix::from_rows(&[&[0.0f64, 0.0], &[5.0, 5.0]]);
        let server = Server::start(ShardedIndex::new(centroids, 2), PipelineConfig::default());
        let queries = Matrix::from_rows(&[&[0.1f64, 0.1], &[4.9, 5.1], &[1.0, 1.0]]);
        let report = run_closed_loop(
            &server,
            &queries,
            LoadGenConfig {
                clients: 3,
                requests_per_client: 40,
            },
        );
        assert_eq!(report.issued, 120);
        assert_eq!(report.completed, 120);
        assert_eq!(report.shed, 0);
        assert!(report.qps > 0.0);
        let line = report.to_string();
        assert!(line.contains("QPS"));
        server.shutdown();
    }

    #[test]
    fn ramp_profile_mirrors_up_and_down() {
        let config = RampConfig {
            base_clients: 1,
            peak_clients: 10,
            steps_up: 4,
            requests_per_client: 1,
        };
        assert_eq!(config.profile(), vec![1, 4, 7, 10, 7, 4, 1]);
        let flat = RampConfig {
            base_clients: 3,
            peak_clients: 3,
            steps_up: 2,
            requests_per_client: 1,
        };
        assert_eq!(flat.profile(), vec![3, 3, 3]);
        let single = RampConfig {
            base_clients: 2,
            peak_clients: 8,
            steps_up: 1,
            requests_per_client: 1,
        };
        assert_eq!(single.profile(), vec![8]);
    }

    #[test]
    fn ramp_run_conserves_requests() {
        let centroids = Matrix::from_rows(&[&[0.0f64, 0.0], &[5.0, 5.0]]);
        let server = Server::start(ShardedIndex::new(centroids, 2), PipelineConfig::default());
        let queries = Matrix::from_rows(&[&[0.1f64, 0.1], &[4.9, 5.1]]);
        let ramp = run_ramp(
            &server,
            &queries,
            RampConfig {
                base_clients: 1,
                peak_clients: 3,
                steps_up: 2,
                requests_per_client: 20,
            },
        );
        assert_eq!(ramp.phases.len(), 3);
        assert!(ramp.conserved());
        assert_eq!(ramp.issued(), 20 + 60 + 20);
        assert_eq!(ramp.completed(), 100);
        assert!(ramp.to_string().contains("conserved=true"));
        let json = ramp.to_json();
        assert!(json.contains("\"conserved\": true"));
        assert!(json.contains("\"clients\": 3"));
        assert_eq!(json.matches("\"p99_ns\"").count(), 3, "one per phase");
        server.shutdown();
    }
}
