//! Closed-loop load generator for `serve-bench`: `clients` threads each
//! issue requests back-to-back (the next request waits for the previous
//! reply), cycling through a pool of query samples. Shed requests
//! ([`ServeError::Overloaded`]) are counted, not retried — the report
//! shows exactly how much load the configured queue admitted.

use crate::error::ServeError;
use crate::pipeline::Server;
use kmeans_core::{Matrix, Scalar};
use std::time::{Duration, Instant};
use sw_des::stats::Histogram;

/// Load-generation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadGenConfig {
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig {
            clients: 4,
            requests_per_client: 2_500,
        }
    }
}

/// Aggregate result of a load run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    pub issued: u64,
    pub completed: u64,
    /// Requests shed with [`ServeError::Overloaded`].
    pub shed: u64,
    /// Completed requests answered over a subset of the shards
    /// ([`Prediction::degraded`](crate::pipeline::Prediction::degraded)).
    pub degraded: u64,
    /// Requests that failed with a typed error after admission (e.g.
    /// [`ServeError::AllShardsDown`]) — counted, never silently lost.
    pub failed: u64,
    pub elapsed: Duration,
    /// Completed requests per wall-clock second.
    pub qps: f64,
    /// End-to-end latency quantiles over completed requests
    /// (log₂-bucket upper bounds).
    pub p50_ns: u64,
    pub p99_ns: u64,
}

impl LoadReport {
    pub fn shed_fraction(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            self.shed as f64 / self.issued as f64
        }
    }
}

impl std::fmt::Display for LoadReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} issued, {} completed ({} degraded), {} shed ({:.1}%), {} failed in {:.2?} — {:.0} QPS, p50 {:.1}µs, p99 {:.1}µs",
            self.issued,
            self.completed,
            self.degraded,
            self.shed,
            self.shed_fraction() * 100.0,
            self.failed,
            self.elapsed,
            self.qps,
            self.p50_ns as f64 / 1e3,
            self.p99_ns as f64 / 1e3
        )
    }
}

/// Drive a closed-loop load test against a running server. Each client
/// starts at a different offset into `queries` so concurrent clients do
/// not issue identical request streams.
pub fn run_closed_loop<S: Scalar>(
    server: &Server<S>,
    queries: &Matrix<S>,
    config: LoadGenConfig,
) -> LoadReport {
    assert!(queries.rows() > 0, "need at least one query sample");
    assert!(config.clients > 0, "need at least one client");
    let start = Instant::now();
    let per_client: Vec<(u64, u64, u64, u64, Histogram)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.clients)
            .map(|c| {
                let client = server.client();
                scope.spawn(move || {
                    let mut completed = 0u64;
                    let mut shed = 0u64;
                    let mut degraded = 0u64;
                    let mut failed = 0u64;
                    let mut latency = Histogram::new();
                    for i in 0..config.requests_per_client {
                        let row = (c * 7919 + i) % queries.rows();
                        let sample = queries.row(row).to_vec();
                        let issued_at = Instant::now();
                        match client.predict(sample) {
                            Ok(p) => {
                                latency.record(issued_at.elapsed().as_nanos() as u64);
                                completed += 1;
                                if p.degraded {
                                    degraded += 1;
                                }
                            }
                            Err(ServeError::Overloaded { .. }) => shed += 1,
                            // Shard crashes mid-run are an expected fault-
                            // injection outcome: count them, don't panic.
                            Err(_) => failed += 1,
                        }
                    }
                    (completed, shed, degraded, failed, latency)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = start.elapsed();
    let mut latency = Histogram::new();
    let (mut completed, mut shed, mut degraded, mut failed) = (0u64, 0u64, 0u64, 0u64);
    for (c, s, dg, fl, hist) in &per_client {
        completed += c;
        shed += s;
        degraded += dg;
        failed += fl;
        latency.merge(hist);
    }
    let issued = (config.clients * config.requests_per_client) as u64;
    LoadReport {
        issued,
        completed,
        shed,
        degraded,
        failed,
        elapsed,
        qps: completed as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_ns: latency.quantile_upper_bound(0.5),
        p99_ns: latency.quantile_upper_bound(0.99),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::ShardedIndex;
    use crate::pipeline::PipelineConfig;

    #[test]
    fn closed_loop_completes_everything_with_ample_queue() {
        let centroids = Matrix::from_rows(&[&[0.0f64, 0.0], &[5.0, 5.0]]);
        let server = Server::start(ShardedIndex::new(centroids, 2), PipelineConfig::default());
        let queries = Matrix::from_rows(&[&[0.1f64, 0.1], &[4.9, 5.1], &[1.0, 1.0]]);
        let report = run_closed_loop(
            &server,
            &queries,
            LoadGenConfig {
                clients: 3,
                requests_per_client: 40,
            },
        );
        assert_eq!(report.issued, 120);
        assert_eq!(report.completed, 120);
        assert_eq!(report.shed, 0);
        assert!(report.qps > 0.0);
        let line = report.to_string();
        assert!(line.contains("QPS"));
        server.shutdown();
    }
}
