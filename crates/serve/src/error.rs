//! Typed request-path errors. `Overloaded` is the load-shedding signal:
//! the bounded admission queue was full, so the request was rejected
//! immediately instead of growing an unbounded backlog.

/// Why a predict request was not served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The admission queue is at capacity; the request was shed. Retry
    /// with backoff, or provision a deeper queue / more workers.
    Overloaded {
        /// Queue depth observed at rejection time (== capacity).
        queue_depth: usize,
        /// Configured admission-queue capacity.
        capacity: usize,
    },
    /// The server is draining and no longer admits work.
    ShuttingDown,
    /// The sample's dimensionality does not match the model's.
    DimensionMismatch { expected: usize, got: usize },
    /// Every centroid shard has crashed; no surviving shard can vote, so
    /// the request cannot be answered even degraded.
    AllShardsDown {
        /// Total shards the index was built with.
        shards: usize,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded {
                queue_depth,
                capacity,
            } => write!(
                f,
                "overloaded: admission queue at {queue_depth}/{capacity}, request shed"
            ),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::DimensionMismatch { expected, got } => {
                write!(f, "sample has {got} dimensions, model expects {expected}")
            }
            ServeError::AllShardsDown { shards } => {
                write!(f, "all {shards} centroid shards are down")
            }
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ServeError::Overloaded {
            queue_depth: 8,
            capacity: 8,
        };
        assert!(e.to_string().contains("8/8"));
        assert!(ServeError::DimensionMismatch {
            expected: 4,
            got: 3
        }
        .to_string()
        .contains("expects 4"));
    }
}
