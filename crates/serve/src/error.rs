//! Typed request-path errors. `Overloaded` is the load-shedding signal:
//! the bounded admission queue was full, so the request was rejected
//! immediately instead of growing an unbounded backlog.

/// Why a predict request was not served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The admission queue is at capacity; the request was shed. Retry
    /// with backoff, or provision a deeper queue / more workers.
    Overloaded {
        /// Queue depth observed at rejection time (== capacity).
        queue_depth: usize,
        /// Configured admission-queue capacity.
        capacity: usize,
    },
    /// SLO-aware admission control shed the request: the predicted p99
    /// (EWMA over windowed latency histograms) exceeds the configured
    /// objective's high watermark. Distinct from [`ServeError::Overloaded`]
    /// — the queue may have had room; the *tail latency* did not.
    SloShed {
        /// The controller's p99 estimate at rejection time, microseconds.
        predicted_p99_us: u64,
        /// The configured p99 objective, microseconds.
        slo_p99_us: u64,
    },
    /// The server is draining and no longer admits work.
    ShuttingDown,
    /// The sample's dimensionality does not match the model's.
    DimensionMismatch { expected: usize, got: usize },
    /// Every centroid shard has crashed; no surviving shard can vote, so
    /// the request cannot be answered even degraded.
    AllShardsDown {
        /// Total shards the index was built with.
        shards: usize,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded {
                queue_depth,
                capacity,
            } => write!(
                f,
                "overloaded: admission queue at {queue_depth}/{capacity}, request shed"
            ),
            ServeError::SloShed {
                predicted_p99_us,
                slo_p99_us,
            } => write!(
                f,
                "slo-shed: predicted p99 {predicted_p99_us}µs exceeds the {slo_p99_us}µs objective, request shed"
            ),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::DimensionMismatch { expected, got } => {
                write!(f, "sample has {got} dimensions, model expects {expected}")
            }
            ServeError::AllShardsDown { shards } => {
                write!(f, "all {shards} centroid shards are down")
            }
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ServeError::Overloaded {
            queue_depth: 8,
            capacity: 8,
        };
        assert!(e.to_string().contains("8/8"));
        assert!(ServeError::DimensionMismatch {
            expected: 4,
            got: 3
        }
        .to_string()
        .contains("expects 4"));
        let shed = ServeError::SloShed {
            predicted_p99_us: 950,
            slo_p99_us: 500,
        };
        assert!(shed.to_string().contains("950µs"));
        assert!(shed.to_string().contains("500µs"));
    }
}
