//! **sunway-kmeans** — a reproduction of *Large-Scale Hierarchical k-means
//! for Heterogeneous Many-Core Supercomputers* (SC 2018) as a Rust library.
//!
//! The paper maps Lloyd's k-means onto the Sunway TaihuLight hardware
//! hierarchy with a three-level data partition: dataflow (`n`) over
//! compute units, centroids (`k`) over unit groups, and — the contribution
//! — dimensions (`d`) over the 64 CPEs of a core group, making `k·d`
//! scale with the whole machine instead of any single memory (constraint
//! C1''). This workspace implements the algorithms, a full machine model
//! standing in for the (unavailable) hardware, and the evaluation harness
//! regenerating every table and figure. See `DESIGN.md` for the inventory
//! and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! ## Crate map
//!
//! | Crate | Role |
//! |---|---|
//! | [`kmeans_core`] | matrices, distance kernels, init, serial Lloyd |
//! | [`hier_kmeans`] | Levels 1/2/3 executors, auto level selection, rayon baseline |
//! | [`msg`] | threaded SPMD message-passing runtime (MPI stand-in) |
//! | [`sw_arch`] | SW26010 / TaihuLight machine & topology model |
//! | [`sw_des`] | discrete-event simulator for contention studies |
//! | [`perf_model`] | per-iteration cost model, feasibility, crossover |
//! | [`datasets`] | shape-matched synthetic workloads (UCI, ImgNet, DeepGlobe) |
//! | [`swkm_serve`] | model artifacts, sharded serving index, request pipeline |
//! | [`swkm_obs`] | metrics registry, RAII spans, JSON/Prometheus exporters |
//!
//! ## Quickstart
//!
//! ```
//! use sunway_kmeans::prelude::*;
//!
//! // Generate a mixture, cluster it with the Level-3 (nkd) executor.
//! let blobs = GaussianMixture::new(600, 16, 4).with_seed(1).generate::<f64>();
//! let init = init_centroids(&blobs.data, 4, InitMethod::KMeansPlusPlus, 7);
//! let result = HierKMeans::new(Level::L3)
//!     .with_units(8)
//!     .with_group_units(2)
//!     .fit(&blobs.data, init)
//!     .unwrap();
//! assert!(result.converged);
//!
//! // Ask the cost model what this would cost at paper scale.
//! let model = CostModel::taihulight(4096);
//! let cost = model
//!     .iteration_time(&ProblemShape::imgnet_headline(), Level::L3)
//!     .unwrap();
//! assert!(cost.total() < 18.0); // the paper's headline claim
//! ```

pub use datasets;
pub use hier_kmeans;
pub use kmeans_core;
pub use msg;
pub use perf_model;
pub use sw_arch;
pub use sw_des;
pub use swkm_obs;
pub use swkm_serve;

/// One-stop imports for applications.
pub mod prelude {
    pub use datasets::{
        GaussianMixture, ImageNetSource, SampleSource, SceneConfig, SyntheticScene,
    };
    pub use hier_kmeans::{
        choose_level, fit, fit_source, HierConfig, HierKMeans, HierResult, Level, StreamConfig,
    };
    pub use kmeans_core::{
        adjusted_rand_index, init_centroids, nmi, purity, standardized, AssignKernel, AssignPlan,
        InitMethod, KMeansConfig, Lloyd, Matrix, MatrixSource, MiniBatchConfig, Scalar,
    };
    pub use perf_model::{best_level, CostModel, ProblemShape};
    pub use sw_arch::{Machine, MachineParams};
    pub use swkm_obs::MetricsRegistry;
    pub use swkm_serve::{
        run_closed_loop, run_ramp, AdmissionConfig, DispatchConfig, ElasticConfig, LoadGenConfig,
        ModelArtifact, PipelineConfig, RampConfig, Server, ShardedIndex,
    };
}
