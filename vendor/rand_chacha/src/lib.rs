//! Offline stand-in for `rand_chacha`.
//!
//! [`ChaCha8Rng`] runs a genuine ChaCha block function (RFC 8439 state
//! layout, 8 rounds) keyed by the 32-byte seed. The output stream is
//! deterministic and statistically strong, but is **not** word-for-word
//! identical to the crates.io `rand_chacha` stream (block word order and
//! nonce handling differ); nothing in this workspace depends on the exact
//! stream, only on determinism per seed.

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;

/// A ChaCha8-based deterministic RNG.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words (state words 4..12).
    key: [u32; 8],
    /// 64-bit block counter (state words 12..14).
    counter: u64,
    /// Current output block.
    block: [u32; 16],
    /// Next unread word of `block`; 16 means exhausted.
    cursor: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        // "expand 32-byte k"
        let mut s: [u32; 16] = [
            0x6170_7865,
            0x3320_646E,
            0x7962_2D32,
            0x6B20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let input = s;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut s, 0, 4, 8, 12);
            quarter_round(&mut s, 1, 5, 9, 13);
            quarter_round(&mut s, 2, 6, 10, 14);
            quarter_round(&mut s, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut s, 0, 5, 10, 15);
            quarter_round(&mut s, 1, 6, 11, 12);
            quarter_round(&mut s, 2, 7, 8, 13);
            quarter_round(&mut s, 3, 4, 9, 14);
        }
        for (out, inp) in s.iter_mut().zip(input) {
            *out = out.wrapping_add(inp);
        }
        self.block = s;
        self.cursor = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            *word = u32::from_le_bytes(seed[i * 4..i * 4 + 4].try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        if self.cursor + 2 > 16 {
            self.refill();
        }
        let lo = self.block[self.cursor] as u64;
        let hi = self.block[self.cursor + 1] as u64;
        self.cursor += 2;
        lo | (hi << 32)
    }

    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn stream_looks_uniform() {
        // Crude sanity: mean of 10k unit draws within 1% of 0.5.
        let mut rng = ChaCha8Rng::seed_from_u64(2018);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn blocks_advance() {
        // More than one block's worth of words keeps producing fresh output.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let first: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        let second: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn from_seed_uses_key_material() {
        let mut z = ChaCha8Rng::from_seed([0u8; 32]);
        let mut k = ChaCha8Rng::from_seed([1u8; 32]);
        assert_ne!(z.next_u64(), k.next_u64());
    }
}
