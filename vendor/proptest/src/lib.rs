//! Offline stand-in for `proptest`.
//!
//! A miniature property-testing runner with the subset of proptest's API
//! this workspace uses:
//!
//! * the [`proptest!`] macro over `name(arg in strategy, …) { body }`
//!   functions, with an optional `#![proptest_config(…)]` header;
//! * range strategies for the common numeric types, [`any`], tuple
//!   strategies, and [`collection::vec`];
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`].
//!
//! Differences from real proptest: no shrinking (a failing case prints its
//! inputs via the panic message and seed), and the RNG is seeded
//! **deterministically from the test function's name**, so runs are fully
//! reproducible — a property that passes once passes always.

pub mod test_runner {
    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; keep that so coverage is
            // comparable.
            ProptestConfig { cases: 256 }
        }
    }

    /// SplitMix64-based deterministic test RNG.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test name (FNV-1a) so every test draws an
        /// independent, reproducible stream.
        pub fn for_test(name: &str) -> Self {
            let mut h = 0xCBF2_9CE4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, 1)` with 53 bits.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = (rng.next_u64() as u128) % span;
                    (self.start as i128 + draw as i128) as $t
                }
            }
        )*};
    }

    impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;

        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+)),+ $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

    /// Strategy produced by [`crate::any`].
    pub struct AnyStrategy<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T> Default for AnyStrategy<T> {
        fn default() -> Self {
            AnyStrategy {
                _marker: std::marker::PhantomData,
            }
        }
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// The strategy generating any value of `T`.
pub fn any<T: strategy::Arbitrary>() -> strategy::AnyStrategy<T> {
    strategy::AnyStrategy::default()
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Element-count specification for [`vec`]: a fixed size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Run each property over `cases` deterministic inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            <$crate::test_runner::ProptestConfig as ::core::default::Default>::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                let inputs = format!(
                    concat!("case {}/{}: ", $(stringify!($arg), " = {:?} "),+),
                    case + 1, config.cases, $(&$arg),+
                );
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $body
                }));
                if let Err(payload) = result {
                    eprintln!("proptest failure in {} [{}]", stringify!($name), inputs);
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in -5i64..5, f in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn tuples_and_vecs_compose(
            pairs in collection::vec((0.0f64..1.0, 0u64..4), 2..6),
            fixed in collection::vec(0u8..255, 3),
        ) {
            prop_assert!(pairs.len() >= 2 && pairs.len() < 6);
            prop_assert_eq!(fixed.len(), 3);
            for (f, u) in &pairs {
                prop_assert!(*f >= 0.0 && *f < 1.0 && *u < 4);
            }
        }
    }

    proptest! {
        #[test]
        fn default_config_and_any(b in any::<u8>()) {
            // Trivially true; exercises the no-config arm and `any`.
            prop_assert!(u16::from(b) < 256);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::test_runner::TestRng::for_test("x::y");
        let mut b = crate::test_runner::TestRng::for_test("x::y");
        let mut c = crate::test_runner::TestRng::for_test("x::z");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
