//! Offline stand-in for `rayon`.
//!
//! Real rayon is a lazy work-stealing scheduler; this stand-in is an *eager*
//! data-parallel evaluator: every combinator materialises a `Vec`, and the
//! element-wise stages (`map`, `for_each`, the per-chunk part of `reduce`)
//! execute on `std::thread::scope` with one contiguous block per thread.
//! Results preserve input order, and `reduce` folds per-thread partials
//! left-to-right, so outcomes are deterministic for a fixed input — a
//! stronger guarantee than rayon's (which permits arbitrary reduction
//! trees), and one the k-means baselines implicitly rely on in tests.

use std::num::NonZeroUsize;

/// Worker threads used for parallel stages.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().unwrap())
    })
}

/// Split `items` into at most `parts` contiguous chunks, preserving order.
fn split_chunks<T>(mut items: Vec<T>, parts: usize) -> Vec<Vec<T>> {
    let parts = parts.clamp(1, items.len().max(1));
    let chunk = items.len().div_ceil(parts);
    let mut out = Vec::with_capacity(parts);
    while !items.is_empty() {
        let tail = items.split_off(items.len().min(chunk).min(items.len()));
        // split_off returns the tail; we want the head — swap them.
        out.push(std::mem::replace(&mut items, tail));
    }
    out
}

/// Apply `f` to every item on scoped threads, preserving order.
fn parallel_apply<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if items.len() < 2 || current_num_threads() == 1 {
        return items.into_iter().map(f).collect();
    }
    let chunks = split_chunks(items, current_num_threads());
    let results: Vec<Vec<R>> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| s.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    results.into_iter().flatten().collect()
}

/// An eagerly materialised parallel iterator.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// The combinator surface of [`ParIter`] (named like rayon's trait so
/// `use rayon::prelude::*` imports keep working and keep being *used*).
pub trait ParallelIterator: Sized {
    type Item: Send;

    fn into_item_vec(self) -> Vec<Self::Item>;

    /// Parallel element-wise transform (order-preserving).
    fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        ParIter {
            items: parallel_apply(self.into_item_vec(), &f),
        }
    }

    /// Group into `Vec`s of `size` items (last may be short).
    fn chunks(self, size: usize) -> ParIter<Vec<Self::Item>> {
        assert!(size > 0, "chunk size must be positive");
        let mut items = self.into_item_vec();
        let mut out = Vec::with_capacity(items.len().div_ceil(size.max(1)));
        while !items.is_empty() {
            let tail = items.split_off(items.len().min(size));
            out.push(std::mem::replace(&mut items, tail));
        }
        ParIter { items: out }
    }

    /// Parallel fold: each thread folds its block from `identity()`, then
    /// the per-thread partials fold left-to-right.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync,
    {
        let items = self.into_item_vec();
        if items.len() < 2 || current_num_threads() == 1 {
            return items.into_iter().fold(identity(), &op);
        }
        let chunks = split_chunks(items, current_num_threads());
        let (identity, op) = (&identity, &op);
        let partials: Vec<Self::Item> = std::thread::scope(|s| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| s.spawn(move || chunk.into_iter().fold(identity(), op)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        partials.into_iter().fold(identity(), op)
    }

    /// Parallel side-effecting visit.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        let _ = self.map(f);
    }

    /// Materialise into a collection.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.into_item_vec().into_iter().collect()
    }
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;

    fn into_item_vec(self) -> Vec<T> {
        self.items
    }
}

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator {
    type Item: Send;

    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Conversion into a parallel iterator over references.
pub trait IntoParallelRefIterator<'a> {
    type Item: Send + 'a;

    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let out: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn chunks_then_reduce_matches_serial() {
        let total = (0..10_000)
            .into_par_iter()
            .chunks(37)
            .map(|c| c.into_iter().sum::<usize>())
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, (0..10_000).sum::<usize>());
    }

    #[test]
    fn chunk_sizes_are_right() {
        let sizes: Vec<usize> = (0..10).into_par_iter().chunks(4).map(|c| c.len()).collect();
        assert_eq!(sizes, vec![4, 4, 2]);
    }

    #[test]
    fn reduce_on_empty_uses_identity() {
        let v: Vec<u64> = Vec::new();
        assert_eq!(v.into_par_iter().reduce(|| 9, |a, b| a + b), 9);
    }

    #[test]
    fn par_iter_over_refs() {
        let v = vec![1u64, 2, 3];
        let s = v.par_iter().map(|x| *x * 10).reduce(|| 0, |a, b| a + b);
        assert_eq!(s, 60);
    }

    #[test]
    fn for_each_visits_everything() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        (0..500).into_par_iter().for_each(|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.into_inner(), 500);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = crate::join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }
}
