//! Offline stand-in for `rand_distr`: the [`Distribution`] trait plus the
//! [`Normal`] and [`LogNormal`] distributions (Box–Muller transform),
//! generic over `f32`/`f64` like upstream.

use rand::RngCore;
use std::marker::PhantomData;

/// A distribution over values of `T`, sampled with any RNG.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Floating-point types the distributions are generic over. Parameters and
/// samples are carried as `f64` internally and converted at the boundary.
pub trait Float: Copy {
    fn to_f64(self) -> f64;
    fn from_f64(v: f64) -> Self;
}

impl Float for f64 {
    fn to_f64(self) -> f64 {
        self
    }

    fn from_f64(v: f64) -> f64 {
        v
    }
}

impl Float for f32 {
    fn to_f64(self) -> f64 {
        self as f64
    }

    fn from_f64(v: f64) -> f32 {
        v as f32
    }
}

/// Errors from invalid distribution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    /// Standard deviation (or shape) was not finite and non-negative.
    BadVariance,
    /// Mean was not finite.
    MeanTooSmall,
}

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NormalError::BadVariance => write!(f, "standard deviation must be finite and >= 0"),
            NormalError::MeanTooSmall => write!(f, "mean must be finite"),
        }
    }
}

impl std::error::Error for NormalError {}

/// The normal (Gaussian) distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal<F: Float = f64> {
    mean: f64,
    std_dev: f64,
    _marker: PhantomData<F>,
}

impl<F: Float> Normal<F> {
    pub fn new(mean: F, std_dev: F) -> Result<Normal<F>, NormalError> {
        let (mean, std_dev) = (mean.to_f64(), std_dev.to_f64());
        if !mean.is_finite() {
            return Err(NormalError::MeanTooSmall);
        }
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(NormalError::BadVariance);
        }
        Ok(Normal {
            mean,
            std_dev,
            _marker: PhantomData,
        })
    }

    pub fn mean(&self) -> F {
        F::from_f64(self.mean)
    }

    pub fn std_dev(&self) -> F {
        F::from_f64(self.std_dev)
    }
}

/// One standard-normal draw via Box–Muller (the cosine branch; the second
/// variate is discarded to keep the sampler stateless).
#[inline]
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] so the log is finite.
    let u1 = 1.0 - (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    let u2 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

impl<F: Float> Distribution<F> for Normal<F> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> F {
        F::from_f64(self.mean + self.std_dev * standard_normal(rng))
    }
}

/// The log-normal distribution: `exp(N(mu, sigma²))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal<F: Float = f64> {
    norm: Normal<F>,
}

impl<F: Float> LogNormal<F> {
    pub fn new(mu: F, sigma: F) -> Result<LogNormal<F>, NormalError> {
        Ok(LogNormal {
            norm: Normal::new(mu, sigma)?,
        })
    }
}

impl<F: Float> Distribution<F> for LogNormal<F> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> F {
        F::from_f64(self.norm.sample(rng).to_f64().exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Sm(u64);
    impl RngCore for Sm {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn normal_moments() {
        let dist = Normal::new(3.0, 2.0).unwrap();
        let mut rng = Sm(1);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn lognormal_is_positive_and_f32_works() {
        let dist: LogNormal<f32> = LogNormal::new(0.5f32, 0.8).unwrap();
        let mut rng = Sm(7);
        for _ in 0..1000 {
            let x: f32 = dist.sample(&mut rng);
            assert!(x > 0.0);
        }
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert_eq!(
            Normal::<f64>::new(0.0, -1.0).unwrap_err(),
            NormalError::BadVariance
        );
        assert_eq!(
            Normal::<f64>::new(f64::NAN, 1.0).unwrap_err(),
            NormalError::MeanTooSmall
        );
    }
}
