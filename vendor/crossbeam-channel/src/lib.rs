//! Offline stand-in for `crossbeam-channel`.
//!
//! Multi-producer multi-consumer channels with crossbeam's API and
//! disconnect semantics, built on `Mutex<VecDeque>` + two `Condvar`s.
//! Slower than real crossbeam under heavy contention, but semantically
//! faithful for the workloads here (the `msg` SPMD runtime and the
//! `swkm-serve` request pipeline):
//!
//! * both `Sender` and `Receiver` are `Clone`;
//! * a channel disconnects when *all* peers on the other side drop;
//! * `bounded(cap)` blocks sends at `cap` queued messages and supports the
//!   non-blocking `try_send` needed for admission control;
//! * receivers drain whatever is already queued even after disconnect.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Sending half; cloneable.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving half; cloneable.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

struct Inner<T> {
    queue: VecDeque<T>,
    cap: Option<usize>,
    senders: usize,
    receivers: usize,
}

/// The receive side disconnected; carries the unsent message back.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

#[derive(Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity.
    Full(T),
    /// All receivers dropped.
    Disconnected(T),
}

// Like upstream crossbeam, Debug elides the payload so `T: Debug` is not
// required of callers that `.expect()` a send result.
impl<T> std::fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> std::fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("Full(..)"),
            TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
        }
    }
}

/// All senders dropped and the queue is empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    Timeout,
    Disconnected,
}

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "receiving on an empty, disconnected channel")
    }
}

fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            cap,
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// An unbounded FIFO channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

/// A bounded FIFO channel holding at most `cap` queued messages.
/// Zero-capacity rendezvous channels are not supported by this stand-in.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(
        cap > 0,
        "zero-capacity rendezvous channels are not supported"
    );
    channel(Some(cap))
}

impl<T> Sender<T> {
    /// Block until the message is queued; error if all receivers dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut inner = self.shared.inner.lock().unwrap();
        loop {
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            match inner.cap {
                Some(cap) if inner.queue.len() >= cap => {
                    inner = self.shared.not_full.wait(inner).unwrap();
                }
                _ => {
                    inner.queue.push_back(value);
                    drop(inner);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
            }
        }
    }

    /// Queue without blocking; `Full` if at capacity.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut inner = self.shared.inner.lock().unwrap();
        if inner.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if let Some(cap) = inner.cap {
            if inner.queue.len() >= cap {
                return Err(TrySendError::Full(value));
            }
        }
        inner.queue.push_back(value);
        drop(inner);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Queued message count.
    pub fn len(&self) -> usize {
        self.shared.inner.lock().unwrap().queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Block until a message arrives or every sender has dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.shared.inner.lock().unwrap();
        loop {
            if let Some(v) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self.shared.not_empty.wait(inner).unwrap();
        }
    }

    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.shared.inner.lock().unwrap();
        if let Some(v) = inner.queue.pop_front() {
            drop(inner);
            self.shared.not_full.notify_one();
            return Ok(v);
        }
        if inner.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Block with a deadline.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.shared.inner.lock().unwrap();
        loop {
            if let Some(v) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, res) = self
                .shared
                .not_empty
                .wait_timeout(inner, deadline - now)
                .unwrap();
            inner = guard;
            if res.timed_out() && inner.queue.is_empty() {
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Blocking iterator until disconnect.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }

    /// Queued message count.
    pub fn len(&self) -> usize {
        self.shared.inner.lock().unwrap().queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.inner.lock().unwrap().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.inner.lock().unwrap().receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.senders -= 1;
            inner.senders
        };
        if remaining == 0 {
            // Wake blocked receivers so they observe the disconnect.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.receivers -= 1;
            inner.receivers
        };
        if remaining == 0 {
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn bounded_try_send_reports_full() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.recv().unwrap(), 1);
        tx.try_send(3).unwrap();
    }

    #[test]
    fn drop_all_senders_disconnects_after_drain() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 7);
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn drop_all_receivers_fails_send() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
        assert!(matches!(tx.try_send(2), Err(TrySendError::Disconnected(2))));
    }

    #[test]
    fn recv_timeout_times_out_then_succeeds() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(5).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(5));
    }

    #[test]
    fn mpmc_across_threads() {
        let (tx, rx) = bounded(4);
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..100 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || rx.iter().count())
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 400);
    }

    #[test]
    fn blocked_bounded_sender_wakes_on_recv() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = thread::spawn(move || tx.send(2));
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv().unwrap(), 1);
        t.join().unwrap().unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
    }
}
