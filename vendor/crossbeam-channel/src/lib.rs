//! Offline stand-in for `crossbeam-channel`.
//!
//! Multi-producer multi-consumer channels with crossbeam's API and
//! disconnect semantics, built on `Mutex<VecDeque>` + two `Condvar`s.
//! Slower than real crossbeam under heavy contention, but semantically
//! faithful for the workloads here (the `msg` SPMD runtime and the
//! `swkm-serve` request pipeline):
//!
//! * both `Sender` and `Receiver` are `Clone`;
//! * a channel disconnects when *all* peers on the other side drop;
//! * `bounded(cap)` blocks sends at `cap` queued messages and supports the
//!   non-blocking `try_send` needed for admission control;
//! * receivers drain whatever is already queued even after disconnect;
//! * [`Select`] multiplexes receive-readiness over many channels from one
//!   thread, with rotating fairness, and [`tick`]/[`after`] provide timer
//!   channels so a select loop can also own its periodic work.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Wakeup slot shared between one [`Select`] and every channel it watches.
///
/// A channel that becomes ready (message enqueued, or all senders dropped)
/// flips the flag and signals the condvar; the selecting thread sleeps on it
/// instead of spinning over `try_recv`.
pub struct SelectWaker {
    ready: Mutex<bool>,
    cond: Condvar,
}

impl SelectWaker {
    fn new() -> Self {
        SelectWaker {
            ready: Mutex::new(false),
            cond: Condvar::new(),
        }
    }

    fn notify(&self) {
        *self.ready.lock().unwrap() = true;
        self.cond.notify_all();
    }
}

/// Sending half; cloneable.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving half; cloneable.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

struct Inner<T> {
    queue: VecDeque<T>,
    cap: Option<usize>,
    senders: usize,
    receivers: usize,
    /// Wakers of `Select`s currently parked on this channel's receive side.
    wakers: Vec<Arc<SelectWaker>>,
}

impl<T> Inner<T> {
    /// Snapshot registered wakers so they can be notified after the channel
    /// lock is released (waker locks are never taken under the channel lock).
    fn take_waker_snapshot(&self) -> Vec<Arc<SelectWaker>> {
        if self.wakers.is_empty() {
            Vec::new()
        } else {
            self.wakers.clone()
        }
    }
}

fn notify_wakers(wakers: Vec<Arc<SelectWaker>>) {
    for w in wakers {
        w.notify();
    }
}

/// The receive side disconnected; carries the unsent message back.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

#[derive(Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity.
    Full(T),
    /// All receivers dropped.
    Disconnected(T),
}

// Like upstream crossbeam, Debug elides the payload so `T: Debug` is not
// required of callers that `.expect()` a send result.
impl<T> std::fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> std::fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("Full(..)"),
            TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
        }
    }
}

/// All senders dropped and the queue is empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    Timeout,
    Disconnected,
}

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "receiving on an empty, disconnected channel")
    }
}

fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            cap,
            senders: 1,
            receivers: 1,
            wakers: Vec::new(),
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// An unbounded FIFO channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

/// A bounded FIFO channel holding at most `cap` queued messages.
/// Zero-capacity rendezvous channels are not supported by this stand-in.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(
        cap > 0,
        "zero-capacity rendezvous channels are not supported"
    );
    channel(Some(cap))
}

impl<T> Sender<T> {
    /// Block until the message is queued; error if all receivers dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut inner = self.shared.inner.lock().unwrap();
        loop {
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            match inner.cap {
                Some(cap) if inner.queue.len() >= cap => {
                    inner = self.shared.not_full.wait(inner).unwrap();
                }
                _ => {
                    inner.queue.push_back(value);
                    let wakers = inner.take_waker_snapshot();
                    drop(inner);
                    self.shared.not_empty.notify_one();
                    notify_wakers(wakers);
                    return Ok(());
                }
            }
        }
    }

    /// Queue without blocking; `Full` if at capacity.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut inner = self.shared.inner.lock().unwrap();
        if inner.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if let Some(cap) = inner.cap {
            if inner.queue.len() >= cap {
                return Err(TrySendError::Full(value));
            }
        }
        inner.queue.push_back(value);
        let wakers = inner.take_waker_snapshot();
        drop(inner);
        self.shared.not_empty.notify_one();
        notify_wakers(wakers);
        Ok(())
    }

    /// Queued message count.
    pub fn len(&self) -> usize {
        self.shared.inner.lock().unwrap().queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Block until a message arrives or every sender has dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.shared.inner.lock().unwrap();
        loop {
            if let Some(v) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self.shared.not_empty.wait(inner).unwrap();
        }
    }

    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.shared.inner.lock().unwrap();
        if let Some(v) = inner.queue.pop_front() {
            drop(inner);
            self.shared.not_full.notify_one();
            return Ok(v);
        }
        if inner.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Block with a deadline.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.shared.inner.lock().unwrap();
        loop {
            if let Some(v) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, res) = self
                .shared
                .not_empty
                .wait_timeout(inner, deadline - now)
                .unwrap();
            inner = guard;
            if res.timed_out() && inner.queue.is_empty() {
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Blocking iterator until disconnect.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }

    /// Queued message count.
    pub fn len(&self) -> usize {
        self.shared.inner.lock().unwrap().queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Receive-readiness hooks used by [`Select`]. Implemented by [`Receiver`];
/// object-safe so one `Select` can watch channels of different payload types.
pub trait SelectHandle {
    /// A `recv` on this channel would not block: a message is queued, or all
    /// senders dropped (so `recv` returns the disconnect immediately).
    fn recv_ready(&self) -> bool;

    /// Register a waker to be notified when the channel may become ready.
    fn register_waker(&self, waker: &Arc<SelectWaker>);

    /// Remove a previously registered waker.
    fn unregister_waker(&self, waker: &Arc<SelectWaker>);
}

impl<T> SelectHandle for Receiver<T> {
    fn recv_ready(&self) -> bool {
        let inner = self.shared.inner.lock().unwrap();
        !inner.queue.is_empty() || inner.senders == 0
    }

    fn register_waker(&self, waker: &Arc<SelectWaker>) {
        self.shared
            .inner
            .lock()
            .unwrap()
            .wakers
            .push(Arc::clone(waker));
    }

    fn unregister_waker(&self, waker: &Arc<SelectWaker>) {
        self.shared
            .inner
            .lock()
            .unwrap()
            .wakers
            .retain(|w| !Arc::ptr_eq(w, waker));
    }
}

/// No operation became ready before the timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadyTimeoutError;

/// No operation was ready at the moment of the call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TryReadyError;

impl std::fmt::Display for ReadyTimeoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "all operations in select timed out")
    }
}

impl std::fmt::Display for TryReadyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "no operation in select is ready")
    }
}

/// Multiplexes receive-readiness over a set of channels.
///
/// Mirrors the `crossbeam_channel::Select` readiness API: register receivers
/// with [`recv`](Select::recv) (each returns a stable operation index), then
/// block in [`ready`](Select::ready) / [`ready_timeout`](Select::ready_timeout)
/// for *some* registered operation to become ready. Readiness is a hint, not a
/// reservation — another consumer may win the race, so pair the returned index
/// with `try_recv` and treat `Empty` as "go around the loop again".
///
/// Fairness: polling starts one past the previously reported index, so a
/// saturated channel cannot starve its peers.
pub struct Select<'a> {
    handles: Vec<&'a dyn SelectHandle>,
    waker: Arc<SelectWaker>,
    next_start: usize,
}

impl<'a> Default for Select<'a> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'a> Select<'a> {
    pub fn new() -> Select<'a> {
        Select {
            handles: Vec::new(),
            waker: Arc::new(SelectWaker::new()),
            next_start: 0,
        }
    }

    /// Register a receive operation; returns its operation index.
    pub fn recv<T>(&mut self, rx: &'a Receiver<T>) -> usize {
        self.handles.push(rx);
        self.handles.len() - 1
    }

    /// One fairness-rotated pass over all handles.
    fn poll(&mut self) -> Option<usize> {
        let n = self.handles.len();
        for off in 0..n {
            let i = (self.next_start + off) % n;
            if self.handles[i].recv_ready() {
                self.next_start = (i + 1) % n;
                return Some(i);
            }
        }
        None
    }

    /// Non-blocking readiness check.
    pub fn try_ready(&mut self) -> Result<usize, TryReadyError> {
        assert!(!self.handles.is_empty(), "no operations registered in select");
        self.poll().ok_or(TryReadyError)
    }

    /// Block until some registered operation is ready.
    pub fn ready(&mut self) -> usize {
        self.ready_deadline(None)
            .expect("select without deadline cannot time out")
    }

    /// Block until some operation is ready or the timeout elapses.
    pub fn ready_timeout(&mut self, timeout: Duration) -> Result<usize, ReadyTimeoutError> {
        self.ready_deadline(Some(Instant::now() + timeout))
            .ok_or(ReadyTimeoutError)
    }

    fn ready_deadline(&mut self, deadline: Option<Instant>) -> Option<usize> {
        assert!(!self.handles.is_empty(), "no operations registered in select");
        loop {
            if let Some(i) = self.poll() {
                return Some(i);
            }
            // Arm the waker, register with every channel, then re-poll before
            // sleeping: a message enqueued between the first poll and
            // registration would otherwise be a lost wakeup.
            *self.waker.ready.lock().unwrap() = false;
            for h in &self.handles {
                h.register_waker(&self.waker);
            }
            let mut timed_out = false;
            if self.poll_registered().is_none() {
                let mut armed = self.waker.ready.lock().unwrap();
                while !*armed && !timed_out {
                    match deadline {
                        None => armed = self.waker.cond.wait(armed).unwrap(),
                        Some(d) => {
                            let now = Instant::now();
                            if now >= d {
                                timed_out = true;
                            } else {
                                let (guard, _) =
                                    self.waker.cond.wait_timeout(armed, d - now).unwrap();
                                armed = guard;
                            }
                        }
                    }
                }
            }
            for h in &self.handles {
                h.unregister_waker(&self.waker);
            }
            if let Some(i) = self.poll() {
                return Some(i);
            }
            if timed_out {
                return None;
            }
            // Spurious or raced wakeup: go around again.
        }
    }

    /// Immutable-poll variant usable while `self.waker` registrations are
    /// live; does not advance the fairness cursor (the post-wake [`poll`]
    /// does).
    fn poll_registered(&self) -> Option<usize> {
        let n = self.handles.len();
        (0..n)
            .map(|off| (self.next_start + off) % n)
            .find(|&i| self.handles[i].recv_ready())
    }

    /// Blocking `select()` returning a handle that must be completed against
    /// the receiver whose index it reports.
    pub fn select(&mut self) -> SelectedOperation {
        SelectedOperation {
            index: self.ready(),
        }
    }

    pub fn select_timeout(
        &mut self,
        timeout: Duration,
    ) -> Result<SelectedOperation, ReadyTimeoutError> {
        self.ready_timeout(timeout).map(|index| SelectedOperation { index })
    }
}

/// A ready operation reported by [`Select::select`].
pub struct SelectedOperation {
    index: usize,
}

impl SelectedOperation {
    pub fn index(&self) -> usize {
        self.index
    }

    /// Complete the operation against the receiver it selected.
    ///
    /// Readiness is only a hint under MPMC: if another consumer drained the
    /// message first this falls back to a blocking `recv`, matching upstream
    /// crossbeam's guarantee that a selected receive completes (sole-consumer
    /// select loops — the common shape — never hit the fallback).
    pub fn recv<T>(self, rx: &Receiver<T>) -> Result<T, RecvError> {
        match rx.try_recv() {
            Ok(v) => Ok(v),
            Err(TryRecvError::Disconnected) => Err(RecvError),
            Err(TryRecvError::Empty) => rx.recv(),
        }
    }
}

/// A channel that delivers `Instant::now()` once, `duration` from the call.
///
/// Backed by a timer thread holding the sender; the thread exits after firing,
/// which leaves the message drainable and the channel disconnected afterwards.
pub fn after(duration: Duration) -> Receiver<Instant> {
    let (tx, rx) = bounded(1);
    std::thread::Builder::new()
        .name("cb-after".into())
        .spawn(move || {
            std::thread::sleep(duration);
            let _ = tx.try_send(Instant::now());
        })
        .expect("spawn timer thread");
    rx
}

/// A channel that delivers `Instant::now()` every `period`.
///
/// Ticks are never stacked: the channel holds at most one pending tick, and a
/// slow consumer simply misses intermediate ticks. The timer thread exits when
/// the receiver side is fully dropped.
pub fn tick(period: Duration) -> Receiver<Instant> {
    assert!(!period.is_zero(), "tick period must be non-zero");
    let (tx, rx) = bounded(1);
    std::thread::Builder::new()
        .name("cb-tick".into())
        .spawn(move || loop {
            std::thread::sleep(period);
            match tx.try_send(Instant::now()) {
                Ok(()) | Err(TrySendError::Full(_)) => {}
                Err(TrySendError::Disconnected(_)) => break,
            }
        })
        .expect("spawn timer thread");
    rx
}

pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.inner.lock().unwrap().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.inner.lock().unwrap().receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let (remaining, wakers) = {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.senders -= 1;
            let wakers = if inner.senders == 0 {
                inner.take_waker_snapshot()
            } else {
                Vec::new()
            };
            (inner.senders, wakers)
        };
        if remaining == 0 {
            // Wake blocked receivers (and parked selects) so they observe
            // the disconnect: a disconnected channel counts as ready.
            self.shared.not_empty.notify_all();
            notify_wakers(wakers);
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.receivers -= 1;
            inner.receivers
        };
        if remaining == 0 {
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn bounded_try_send_reports_full() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.recv().unwrap(), 1);
        tx.try_send(3).unwrap();
    }

    #[test]
    fn drop_all_senders_disconnects_after_drain() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 7);
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn drop_all_receivers_fails_send() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
        assert!(matches!(tx.try_send(2), Err(TrySendError::Disconnected(2))));
    }

    #[test]
    fn recv_timeout_times_out_then_succeeds() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(5).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(5));
    }

    #[test]
    fn mpmc_across_threads() {
        let (tx, rx) = bounded(4);
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..100 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || rx.iter().count())
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 400);
    }

    #[test]
    fn blocked_bounded_sender_wakes_on_recv() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = thread::spawn(move || tx.send(2));
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv().unwrap(), 1);
        t.join().unwrap().unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn select_reports_the_ready_channel() {
        let (tx_a, rx_a) = unbounded::<u32>();
        let (_tx_b, rx_b) = unbounded::<String>();
        let mut sel = Select::new();
        let op_a = sel.recv(&rx_a);
        let op_b = sel.recv(&rx_b);
        tx_a.send(42).unwrap();
        let op = sel.ready();
        assert_eq!(op, op_a);
        assert_ne!(op, op_b);
        assert_eq!(rx_a.try_recv(), Ok(42));
    }

    #[test]
    fn select_ready_timeout_expires_on_idle_channels() {
        let (_tx, rx) = unbounded::<u32>();
        let mut sel = Select::new();
        sel.recv(&rx);
        assert_eq!(
            sel.ready_timeout(Duration::from_millis(10)),
            Err(ReadyTimeoutError)
        );
        assert_eq!(sel.try_ready(), Err(TryReadyError));
    }

    #[test]
    fn select_wakes_when_a_parked_channel_receives() {
        let (tx, rx) = unbounded::<u32>();
        let (_tx2, rx2) = unbounded::<u32>();
        let t = thread::spawn(move || {
            thread::sleep(Duration::from_millis(30));
            tx.send(9).unwrap();
        });
        let mut sel = Select::new();
        let op_rx = sel.recv(&rx);
        sel.recv(&rx2);
        let start = Instant::now();
        let op = sel.ready();
        assert_eq!(op, op_rx);
        assert!(start.elapsed() >= Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(9));
        t.join().unwrap();
    }

    #[test]
    fn select_sees_disconnect_as_ready() {
        let (tx, rx) = unbounded::<u32>();
        let t = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            drop(tx);
        });
        let mut sel = Select::new();
        let op = sel.recv(&rx);
        assert_eq!(sel.ready(), op);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        t.join().unwrap();
    }

    #[test]
    fn select_rotates_between_saturated_channels() {
        let (tx_a, rx_a) = unbounded::<u32>();
        let (tx_b, rx_b) = unbounded::<u32>();
        for i in 0..8 {
            tx_a.send(i).unwrap();
            tx_b.send(i).unwrap();
        }
        let mut sel = Select::new();
        let op_a = sel.recv(&rx_a);
        let op_b = sel.recv(&rx_b);
        let mut seen = [0usize; 2];
        for _ in 0..8 {
            let op = sel.ready();
            if op == op_a {
                rx_a.try_recv().unwrap();
                seen[0] += 1;
            } else {
                assert_eq!(op, op_b);
                rx_b.try_recv().unwrap();
                seen[1] += 1;
            }
        }
        // Both saturated channels must make progress, not just the first.
        assert_eq!(seen, [4, 4]);
    }

    #[test]
    fn selected_operation_completes_a_receive() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(5).unwrap();
        let mut sel = Select::new();
        let op_rx = sel.recv(&rx);
        let op = sel.select();
        assert_eq!(op.index(), op_rx);
        assert_eq!(op.recv(&rx), Ok(5));
        drop(tx);
        let op = sel.select();
        assert_eq!(op.recv(&rx), Err(RecvError));
    }

    #[test]
    fn select_unregisters_wakers_after_ready() {
        let (tx, rx) = unbounded::<u32>();
        {
            let mut sel = Select::new();
            sel.recv(&rx);
            assert!(sel.ready_timeout(Duration::from_millis(5)).is_err());
        }
        // A timed-out (then dropped) select must leave no wakers behind.
        assert!(rx.shared.inner.lock().unwrap().wakers.is_empty());
        tx.send(1).unwrap();
        assert_eq!(rx.recv(), Ok(1));
    }

    #[test]
    fn tick_channel_delivers_periodically_and_stops_on_drop() {
        let rx = tick(Duration::from_millis(5));
        let first = rx.recv().unwrap();
        let second = rx.recv().unwrap();
        assert!(second >= first);
        drop(rx); // timer thread notices the disconnect and exits
    }

    #[test]
    fn after_channel_fires_once() {
        let start = Instant::now();
        let rx = after(Duration::from_millis(15));
        let fired = rx.recv().unwrap();
        assert!(fired.duration_since(start) >= Duration::from_millis(10));
        // Sender dropped after firing: channel is now disconnected.
        assert_eq!(rx.recv(), Err(RecvError));
    }
}
