//! Offline stand-in for `parking_lot`: `Mutex`, `RwLock` and `Condvar`
//! wrapping `std::sync`, with parking_lot's panic-on-poison ergonomics
//! (guards are returned directly, not inside `Result`).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};
use std::time::Duration;

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap()
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap()
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap()
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap()
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap()
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap()
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap()
    }
}

#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.0.wait(guard).unwrap()
    }

    /// Returns `true` if the wait timed out.
    pub fn wait_for<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        let (guard, res) = self.0.wait_timeout(guard, timeout).unwrap();
        (guard, res.timed_out())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_guards_data() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_allows_parallel_reads() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
