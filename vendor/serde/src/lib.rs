//! Offline stand-in for `serde`.
//!
//! Real serde is a zero-copy serialization *framework* mediated by proc-macro
//! derives; none of that machinery is available offline. This stand-in keeps
//! the crate name and trait names so existing `use serde::…` imports and
//! `#[derive(Serialize, Deserialize)]` attributes compile unchanged, while
//! providing a small but genuine byte-oriented codec:
//!
//! * [`Serialize`] appends a little-endian, length-prefixed encoding of the
//!   value to a `Vec<u8>`.
//! * [`Deserialize`] reads the value back from a `&[u8]` cursor, returning a
//!   typed [`DecodeError`] on malformed input.
//!
//! The `derive` feature re-exports **no-op** derive macros (the workspace
//! only derives these traits on config structs it never round-trips);
//! anything that truly serializes — the `swkm-serve` model artifact —
//! implements the traits by hand.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Decoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before the value was complete.
    UnexpectedEof { needed: usize, remaining: usize },
    /// A length prefix or tag had an impossible value.
    Invalid(&'static str),
    /// A UTF-8 string field held invalid bytes.
    Utf8,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnexpectedEof { needed, remaining } => {
                write!(
                    f,
                    "unexpected end of input: needed {needed} bytes, {remaining} left"
                )
            }
            DecodeError::Invalid(what) => write!(f, "invalid encoding: {what}"),
            DecodeError::Utf8 => write!(f, "invalid UTF-8 in string field"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Serialize into a growing byte buffer.
pub trait Serialize {
    fn serialize(&self, out: &mut Vec<u8>);
}

/// Deserialize from a byte cursor; on success the cursor is advanced past
/// the consumed bytes.
pub trait Deserialize: Sized {
    fn deserialize(input: &mut &[u8]) -> Result<Self, DecodeError>;
}

/// Pull `n` bytes off the front of the cursor.
pub fn take<'a>(input: &mut &'a [u8], n: usize) -> Result<&'a [u8], DecodeError> {
    if input.len() < n {
        return Err(DecodeError::UnexpectedEof {
            needed: n,
            remaining: input.len(),
        });
    }
    let (head, tail) = input.split_at(n);
    *input = tail;
    Ok(head)
}

macro_rules! impl_le_primitive {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
        }
        impl Deserialize for $t {
            fn deserialize(input: &mut &[u8]) -> Result<Self, DecodeError> {
                let bytes = take(input, std::mem::size_of::<$t>())?;
                Ok(<$t>::from_le_bytes(bytes.try_into().unwrap()))
            }
        }
    )*};
}

impl_le_primitive!(u8, u16, u32, u64, i8, i16, i32, i64, f32, f64);

// usize always travels as u64 so artifacts are portable across word sizes.
impl Serialize for usize {
    fn serialize(&self, out: &mut Vec<u8>) {
        (*self as u64).serialize(out);
    }
}

impl Deserialize for usize {
    fn deserialize(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let v = u64::deserialize(input)?;
        usize::try_from(v).map_err(|_| DecodeError::Invalid("usize overflow"))
    }
}

impl Serialize for bool {
    fn serialize(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
}

impl Deserialize for bool {
    fn deserialize(input: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::deserialize(input)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError::Invalid("bool tag")),
        }
    }
}

impl Serialize for String {
    fn serialize(&self, out: &mut Vec<u8>) {
        self.len().serialize(out);
        out.extend_from_slice(self.as_bytes());
    }
}

impl Deserialize for String {
    fn deserialize(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let len = usize::deserialize(input)?;
        let bytes = take(input, len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::Utf8)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, out: &mut Vec<u8>) {
        self.len().serialize(out);
        for item in self {
            item.serialize(out);
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let len = usize::deserialize(input)?;
        // Guard allocation: each element needs at least one input byte.
        if len > input.len() && std::mem::size_of::<T>() > 0 {
            return Err(DecodeError::Invalid("sequence length exceeds input"));
        }
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(T::deserialize(input)?);
        }
        Ok(v)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.serialize(out);
            }
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(input: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::deserialize(input)? {
            0 => Ok(None),
            1 => Ok(Some(T::deserialize(input)?)),
            _ => Err(DecodeError::Invalid("option tag")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(v: T) {
        let mut buf = Vec::new();
        v.serialize(&mut buf);
        let mut cursor = buf.as_slice();
        assert_eq!(T::deserialize(&mut cursor).unwrap(), v);
        assert!(cursor.is_empty(), "trailing bytes after {v:?}");
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(42u8);
        round_trip(0xDEAD_BEEFu32);
        round_trip(-17i64);
        round_trip(3.5f32);
        round_trip(-0.125f64);
        round_trip(usize::MAX);
        round_trip(true);
        round_trip(false);
    }

    #[test]
    fn compounds_round_trip() {
        round_trip(String::from("swkm model"));
        round_trip(vec![1.0f64, -2.0, 3.25]);
        round_trip(Option::<u32>::None);
        round_trip(Some(vec![String::from("a"), String::new()]));
    }

    #[test]
    fn truncated_input_is_typed_eof() {
        let mut buf = Vec::new();
        123456u64.serialize(&mut buf);
        let mut cursor = &buf[..3];
        assert!(matches!(
            u64::deserialize(&mut cursor),
            Err(DecodeError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn hostile_length_prefix_rejected() {
        let mut buf = Vec::new();
        u64::MAX.serialize(&mut buf);
        let mut cursor = buf.as_slice();
        let err = Vec::<f64>::deserialize(&mut cursor).unwrap_err();
        assert!(matches!(err, DecodeError::Invalid(_)));
    }

    #[test]
    fn bad_tags_rejected() {
        let mut cursor = &[7u8][..];
        assert_eq!(
            bool::deserialize(&mut cursor),
            Err(DecodeError::Invalid("bool tag"))
        );
        let mut cursor = &[9u8][..];
        assert!(Option::<u8>::deserialize(&mut cursor).is_err());
    }
}
