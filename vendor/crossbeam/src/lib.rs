//! Offline stand-in for the `crossbeam` facade crate: only the channel
//! module is re-exported (the rest of crossbeam is unused here).

pub use crossbeam_channel as channel;

/// Structured scoped threads, deferring to `std::thread::scope`.
pub fn scope<'env, F, T>(f: F) -> std::thread::Result<T>
where
    F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> T,
{
    Ok(std::thread::scope(f))
}

#[cfg(test)]
mod tests {
    #[test]
    fn channel_reexport_works() {
        let (tx, rx) = crate::channel::unbounded();
        tx.send(3u8).unwrap();
        assert_eq!(rx.recv().unwrap(), 3);
    }

    #[test]
    fn scope_joins() {
        let total = crate::scope(|s| {
            let h = s.spawn(|| 21);
            h.join().unwrap() * 2
        })
        .unwrap();
        assert_eq!(total, 42);
    }
}
