//! Offline stand-in for `criterion`.
//!
//! A minimal wall-clock benchmark harness with criterion's call-site API:
//! `benchmark_group` → `sample_size` / `warm_up_time` / `measurement_time` /
//! `throughput` → `bench_function` / `bench_with_input` → `finish`, plus
//! [`BenchmarkId`], [`Throughput`], [`black_box`] and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Reporting is intentionally simple: each benchmark prints its median,
//! mean and min sample time (and derived throughput when configured) to
//! stdout. There is no statistical outlier analysis, HTML report, or
//! baseline comparison.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimiser identity, so benchmarked values are not
/// constant-folded away.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Work-per-iteration declaration used to derive throughput numbers.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark's identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Bencher {
    /// Time `routine`, first warming up, then collecting `sample_size`
    /// samples (each a batch of iterations sized so one sample fits the
    /// measurement budget).
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm-up: also estimates the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start
            .elapsed()
            .checked_div(warm_iters as u32)
            .unwrap_or_default();

        // Batch size so that sample_size batches roughly fill the
        // measurement budget, at least one iteration per batch.
        let budget_per_sample = self
            .measurement_time
            .checked_div(self.sample_size as u32)
            .unwrap_or_default();
        let iters_per_sample = if per_iter.is_zero() {
            1
        } else {
            (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 20) as u32
        };

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters_per_sample);
        }
    }
}

/// A named group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
        };
        f(&mut b);
        self.report(&id.to_string(), &b.samples);
        self
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(&mut self) {}

    fn report(&self, id: &str, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{}/{id}: no samples", self.name);
            return;
        }
        let mut sorted = samples.to_vec();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        let rate = self.throughput.map(|t| {
            let secs = median.as_secs_f64().max(1e-12);
            match t {
                Throughput::Elements(n) => format!("  {:.3e} elem/s", n as f64 / secs),
                Throughput::Bytes(n) => format!("  {:.3e} B/s", n as f64 / secs),
            }
        });
        println!(
            "{}/{id}: median {median:?}  mean {mean:?}  min {min:?}{}",
            self.name,
            rate.unwrap_or_default()
        );
    }
}

/// Benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== {name} ==");
        BenchmarkGroup {
            name,
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        self.benchmark_group("criterion").bench_function(id, f);
        self
    }

    pub fn final_summary(&mut self) {}
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_group(c: &mut Criterion) -> BenchmarkGroup<'_> {
        let mut g = c.benchmark_group("test");
        g.sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        g
    }

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default();
        let mut g = quick_group(&mut c);
        let mut ran = false;
        g.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut g = quick_group(&mut c);
        g.throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::new("sum", 4), &vec![1u64, 2, 3, 4], |b, v| {
            b.iter(|| v.iter().sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter(32).to_string(), "32");
    }
}
