//! Offline stand-in for the `rand` crate.
//!
//! Covers the surface this workspace uses: [`RngCore`], [`SeedableRng`]
//! (including the SplitMix64-based `seed_from_u64` default), the
//! [`Rng::gen_range`] extension over ranges of the common numeric types,
//! and [`seq::SliceRandom::shuffle`] (Fisher–Yates).

use std::ops::Range;

/// The core of every random number generator: a `u64` stream.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// SplitMix64 — used to expand a `u64` into seed material.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic construction from seed material.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed with SplitMix64 (the same scheme the
    /// real `rand` uses), then defer to [`SeedableRng::from_seed`].
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// A range that knows how to draw a uniform sample of `T` from an RNG.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Modulo reduction: bias is < span/2^64, far below anything a
                // test could observe.
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_signed_range!(i8, i16, i32, i64, isize);

/// A uniform draw from `[0, 1)` with 53 random bits.
#[inline]
pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (unit_f64(rng) as f32) * (self.end - self.start)
    }
}

/// The user-facing extension trait, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::RngCore;

    /// Slice shuffling and random selection.
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&f));
            let g = rng.gen_range(0.0f32..10.0);
            assert!((0.0..10.0).contains(&g));
            let s = rng.gen_range(-5i64..-1);
            assert!((-5..-1).contains(&s));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = Counter(1);
        let _ = rng.gen_range(5usize..5);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(42);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely identity shuffle");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = Counter(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn choose_picks_existing() {
        let mut rng = Counter(9);
        let v = [10, 20, 30];
        assert!(v.contains(v.as_slice().choose(&mut rng).unwrap()));
        let empty: [i32; 0] = [];
        assert!(empty.as_slice().choose(&mut rng).is_none());
    }
}
