//! No-op `Serialize`/`Deserialize` derive macros for the offline serde
//! stand-in. The workspace only ever *derives* these traits (on plain-data
//! config structs) without round-tripping through a serde data format, so
//! the derives expand to nothing. Types that genuinely serialize (model
//! artifacts) implement the stand-in's byte-oriented traits by hand.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
